//! Write-ahead job journal: crash-safe durability for `raven-serve`.
//!
//! Verification jobs are expensive — a single MILP run can burn a whole
//! deadline budget — so losing queued or running jobs to a crash,
//! OOM-kill, or redeploy silently throws away paid-for solver work. The
//! journal records every job's lifecycle in an append-only, checksummed
//! log so a restarted server can pick up exactly where the dead process
//! stopped:
//!
//! * **`Submitted`** (fsync'd before the client is acked) carries the job
//!   id, property, raw request body, and optional idempotency key —
//!   everything needed to re-run the job from scratch.
//! * **`Started`** (fsync'd before the worker computes) marks a pickup;
//!   a `Started` with no later terminal record is the signature of a
//!   crash-while-running, and replay counts them to quarantine "poison"
//!   jobs that keep killing the process.
//! * **`Completed` / `Failed`** are terminal. `Completed` embeds the full
//!   response envelope so a restarted server serves the *byte-identical*
//!   verdict without re-solving.
//! * **`Quarantined`** pins a poison verdict so later restarts don't
//!   re-count crash signatures.
//! * **`CleanShutdown`** is appended after a graceful drain; replay that
//!   ends on it skips the non-terminal rescue scan entirely (fast path).
//!
//! ## On-disk format
//!
//! A journal is a directory of segments `wal-<seq>.log`. Each record is
//!
//! ```text
//! [u32 LE payload length][u64 LE FNV-1a of payload][payload bytes]
//! ```
//!
//! with the payload a compact JSON object (`raven-json`). The checksum is
//! the same FNV-1a the model registry uses for content hashes. A torn or
//! corrupt record ends replay of its segment — everything before it is
//! kept, everything after is unreachable (append-only logs corrupt only
//! at the tail under crash, so this loses at most the last record).
//!
//! ## Rotation and compaction
//!
//! The active segment rotates once it exceeds `segment_bytes`. Closed
//! segments whose every job has reached a terminal state are *compacted*:
//! rewritten to hold only self-contained [`Record::Verdict`] entries
//! (cacheable envelopes plus the submit info that regenerates their cache
//! key), which keeps idempotent replay working while dropping the
//! lifecycle chatter. If the directory still exceeds `cap_bytes`, the
//! oldest closed segments are deleted — trading replayable cache warmth
//! for bounded disk, never correctness.

use raven_json::Json;
use raven_nn::fnv1a64;
use std::collections::{HashMap, HashSet};
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Journal sizing knobs.
#[derive(Debug, Clone, Copy)]
pub struct JournalConfig {
    /// Rotate the active segment once it exceeds this many bytes.
    pub segment_bytes: u64,
    /// Compaction keeps the whole journal directory below this many bytes
    /// (best-effort: the active segment is never deleted).
    pub cap_bytes: u64,
}

impl Default for JournalConfig {
    fn default() -> Self {
        Self {
            segment_bytes: 4 * 1024 * 1024,
            cap_bytes: 64 * 1024 * 1024,
        }
    }
}

/// One journal record (the payload JSON, decoded).
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// A job was accepted: everything needed to re-run it from scratch.
    Submitted {
        /// Job id (stable across restarts).
        id: u64,
        /// Property family (`"uap"` / `"monotonicity"`).
        property: String,
        /// Raw request body (UTF-8 JSON text).
        body: String,
        /// Client idempotency key, when one was supplied.
        key: Option<String>,
    },
    /// A worker picked the job up (one record per attempt).
    Started {
        /// Job id.
        id: u64,
    },
    /// The job was shipped to a remote fleet worker. While a remote
    /// attempt is outstanding the local process is just waiting on a
    /// socket, so a crash in that window is not the job's fault: replay
    /// subtracts it from the crash-signature weight (see
    /// [`ReplayJob::crash_weight`]).
    RemoteAttempt {
        /// Job id.
        id: u64,
        /// Fleet worker name (from its hello frame).
        worker: String,
    },
    /// Every remote attempt failed (rejection, timeout, disconnect); the
    /// job fell back to local compute, which *can* crash the process, so
    /// the crash-signature weight goes back up.
    LocalFallback {
        /// Job id.
        id: u64,
    },
    /// One shard of a sharded UAP job was shipped to a remote fleet
    /// worker. Crash-accounting-wise a shard attempt behaves like a
    /// [`Record::RemoteAttempt`]: while any shard is in remote hands the
    /// local process is waiting on sockets, so a crash in that window is
    /// excused.
    ShardAttempt {
        /// Job id.
        id: u64,
        /// Shard index within the job's partition.
        shard: u32,
        /// Fleet worker name the shard was shipped to.
        worker: String,
    },
    /// One shard exhausted its remote retries and is being solved locally
    /// (the other shards' accepted results are kept). Local compute *can*
    /// crash the process, so — like [`Record::LocalFallback`] — the
    /// crash-signature weight goes back up.
    ShardFallback {
        /// Job id.
        id: u64,
        /// Shard index being solved locally.
        shard: u32,
    },
    /// The job finished; the envelope is the exact response served.
    Completed {
        /// Job id.
        id: u64,
        /// Full response envelope (verdict, timings, model hash).
        envelope: Json,
        /// Whether the verdict may enter the LRU cache on replay
        /// (degraded verdicts are never cacheable).
        cacheable: bool,
    },
    /// The job finished with an error.
    Failed {
        /// Job id.
        id: u64,
        /// The error message served to the client.
        error: String,
    },
    /// Replay decided this job is poison (crashed the process repeatedly).
    Quarantined {
        /// Job id.
        id: u64,
    },
    /// A compacted terminal verdict: `Submitted` + `Completed` merged into
    /// one self-contained record.
    Verdict {
        /// Job id.
        id: u64,
        /// Property family.
        property: String,
        /// Raw request body (regenerates the cache key on replay).
        body: String,
        /// Client idempotency key, when one was supplied.
        key: Option<String>,
        /// Full response envelope.
        envelope: Json,
        /// Whether the verdict may enter the LRU cache on replay.
        cacheable: bool,
    },
    /// Graceful drain finished; nothing after this record.
    CleanShutdown,
}

impl Record {
    /// The job id this record concerns (`None` for [`Record::CleanShutdown`]).
    pub fn id(&self) -> Option<u64> {
        match self {
            Record::Submitted { id, .. }
            | Record::Started { id }
            | Record::RemoteAttempt { id, .. }
            | Record::LocalFallback { id }
            | Record::ShardAttempt { id, .. }
            | Record::ShardFallback { id, .. }
            | Record::Completed { id, .. }
            | Record::Failed { id, .. }
            | Record::Quarantined { id }
            | Record::Verdict { id, .. } => Some(*id),
            Record::CleanShutdown => None,
        }
    }

    fn to_json(&self) -> Json {
        // Job ids are u64 but JSON numbers are f64: ids are sequential
        // (start at 1), so they stay far below 2^53 and roundtrip exactly.
        let id_field = |id: u64| ("id", Json::from(id as f64));
        let opt_key = |key: &Option<String>| match key {
            Some(k) => vec![("key", Json::from(k.as_str()))],
            None => vec![],
        };
        match self {
            Record::Submitted {
                id,
                property,
                body,
                key,
            } => {
                let mut fields = vec![
                    ("t", Json::from("submitted")),
                    id_field(*id),
                    ("property", Json::from(property.as_str())),
                    ("body", Json::from(body.as_str())),
                ];
                fields.extend(opt_key(key));
                Json::obj(fields)
            }
            Record::Started { id } => Json::obj([("t", Json::from("started")), id_field(*id)]),
            Record::RemoteAttempt { id, worker } => Json::obj([
                ("t", Json::from("remote_attempt")),
                id_field(*id),
                ("worker", Json::from(worker.as_str())),
            ]),
            Record::LocalFallback { id } => {
                Json::obj([("t", Json::from("local_fallback")), id_field(*id)])
            }
            Record::ShardAttempt { id, shard, worker } => Json::obj([
                ("t", Json::from("shard_attempt")),
                id_field(*id),
                ("shard", Json::from(f64::from(*shard))),
                ("worker", Json::from(worker.as_str())),
            ]),
            Record::ShardFallback { id, shard } => Json::obj([
                ("t", Json::from("shard_fallback")),
                id_field(*id),
                ("shard", Json::from(f64::from(*shard))),
            ]),
            Record::Completed {
                id,
                envelope,
                cacheable,
            } => Json::obj([
                ("t", Json::from("completed")),
                id_field(*id),
                ("cacheable", Json::from(*cacheable)),
                ("envelope", envelope.clone()),
            ]),
            Record::Failed { id, error } => Json::obj([
                ("t", Json::from("failed")),
                id_field(*id),
                ("error", Json::from(error.as_str())),
            ]),
            Record::Quarantined { id } => {
                Json::obj([("t", Json::from("quarantined")), id_field(*id)])
            }
            Record::Verdict {
                id,
                property,
                body,
                key,
                envelope,
                cacheable,
            } => {
                let mut fields = vec![
                    ("t", Json::from("verdict")),
                    id_field(*id),
                    ("property", Json::from(property.as_str())),
                    ("body", Json::from(body.as_str())),
                ];
                fields.extend(opt_key(key));
                fields.push(("cacheable", Json::from(*cacheable)));
                fields.push(("envelope", envelope.clone()));
                Json::obj(fields)
            }
            Record::CleanShutdown => Json::obj([("t", Json::from("clean_shutdown"))]),
        }
    }

    fn from_json(json: &Json) -> Option<Record> {
        let id = || json.get("id").and_then(Json::as_f64).map(|n| n as u64);
        let text = |field: &str| json.get(field).and_then(Json::as_str).map(str::to_string);
        let key = || text("key");
        match json.get("t").and_then(Json::as_str)? {
            "submitted" => Some(Record::Submitted {
                id: id()?,
                property: text("property")?,
                body: text("body")?,
                key: key(),
            }),
            "started" => Some(Record::Started { id: id()? }),
            "remote_attempt" => Some(Record::RemoteAttempt {
                id: id()?,
                worker: text("worker")?,
            }),
            "local_fallback" => Some(Record::LocalFallback { id: id()? }),
            "shard_attempt" => Some(Record::ShardAttempt {
                id: id()?,
                shard: json.get("shard").and_then(Json::as_f64)? as u32,
                worker: text("worker")?,
            }),
            "shard_fallback" => Some(Record::ShardFallback {
                id: id()?,
                shard: json.get("shard").and_then(Json::as_f64)? as u32,
            }),
            "completed" => Some(Record::Completed {
                id: id()?,
                envelope: json.get("envelope")?.clone(),
                cacheable: json.get("cacheable").and_then(Json::as_bool)?,
            }),
            "failed" => Some(Record::Failed {
                id: id()?,
                error: text("error")?,
            }),
            "quarantined" => Some(Record::Quarantined { id: id()? }),
            "verdict" => Some(Record::Verdict {
                id: id()?,
                property: text("property")?,
                body: text("body")?,
                key: key(),
                envelope: json.get("envelope")?.clone(),
                cacheable: json.get("cacheable").and_then(Json::as_bool)?,
            }),
            "clean_shutdown" => Some(Record::CleanShutdown),
            _ => None,
        }
    }
}

/// Encodes one record into its on-disk framing.
fn encode_record(record: &Record) -> Vec<u8> {
    let payload = record.to_json().to_string().into_bytes();
    let mut out = Vec::with_capacity(12 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Decodes as many whole, checksum-valid records as `bytes` holds; stops
/// silently at the first torn or corrupt frame (crash tail).
fn decode_records(bytes: &[u8]) -> Vec<Record> {
    let mut records = Vec::new();
    let mut at = 0usize;
    while bytes.len() - at >= 12 {
        let len = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap()) as usize;
        let crc = u64::from_le_bytes(bytes[at + 4..at + 12].try_into().unwrap());
        let Some(payload) = bytes.get(at + 12..at + 12 + len) else {
            break; // torn tail: length points past EOF
        };
        if fnv1a64(payload) != crc {
            break; // corrupt payload
        }
        let Ok(text) = std::str::from_utf8(payload) else {
            break;
        };
        let Some(record) = Json::parse(text).ok().as_ref().and_then(Record::from_json) else {
            break;
        };
        records.push(record);
        at += 12 + len;
    }
    records
}

fn segment_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("wal-{seq:08}.log"))
}

fn segment_seq(path: &Path) -> Option<u64> {
    let name = path.file_name()?.to_str()?;
    name.strip_prefix("wal-")?
        .strip_suffix(".log")?
        .parse()
        .ok()
}

/// Sorted `(seq, path)` list of all segments in `dir`.
fn list_segments(dir: &Path) -> std::io::Result<Vec<(u64, PathBuf)>> {
    let mut segments: Vec<(u64, PathBuf)> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter_map(|p| segment_seq(&p).map(|seq| (seq, p)))
        .collect();
    segments.sort();
    Ok(segments)
}

struct JournalInner {
    active: File,
    active_seq: u64,
    active_bytes: u64,
}

/// A write-ahead journal over a directory of segments. Thread-safe: all
/// appends serialize behind one internal lock.
pub struct Journal {
    dir: PathBuf,
    config: JournalConfig,
    inner: Mutex<JournalInner>,
}

impl Journal {
    /// Opens (creating the directory if needed) and starts a fresh active
    /// segment after any existing ones.
    ///
    /// # Errors
    ///
    /// I/O errors creating the directory or the active segment.
    pub fn open(dir: &Path, config: JournalConfig) -> std::io::Result<Journal> {
        fs::create_dir_all(dir)?;
        let next_seq = list_segments(dir)?.last().map_or(0, |(seq, _)| seq + 1);
        let active = OpenOptions::new()
            .create(true)
            .append(true)
            .open(segment_path(dir, next_seq))?;
        Ok(Journal {
            dir: dir.to_path_buf(),
            config,
            inner: Mutex::new(JournalInner {
                active,
                active_seq: next_seq,
                active_bytes: 0,
            }),
        })
    }

    /// The journal directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Appends one record; `durable` additionally fsyncs before returning
    /// (submit and start records, where the ack or the crash-counting
    /// semantics depend on the record surviving power loss).
    ///
    /// # Errors
    ///
    /// Propagates write/fsync errors (callers fail the request rather than
    /// ack a job the journal did not capture).
    pub fn append(&self, record: &Record, durable: bool) -> std::io::Result<()> {
        let bytes = encode_record(record);
        let mut inner = self.inner.lock().expect("journal lock");
        inner.active.write_all(&bytes)?;
        if durable {
            inner.active.sync_data()?;
        }
        inner.active_bytes += bytes.len() as u64;
        crate::metrics::JOURNAL_APPENDS.inc();
        if inner.active_bytes >= self.config.segment_bytes {
            self.rotate(&mut inner)?;
        }
        Ok(())
    }

    /// Closes the active segment and opens the next one, then compacts.
    fn rotate(&self, inner: &mut JournalInner) -> std::io::Result<()> {
        inner.active.sync_data()?;
        let next = inner.active_seq + 1;
        inner.active = OpenOptions::new()
            .create(true)
            .append(true)
            .open(segment_path(&self.dir, next))?;
        inner.active_seq = next;
        inner.active_bytes = 0;
        self.compact_locked(inner)
    }

    /// Compacts closed segments (public entry point used after recovery).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors listing or rewriting segments.
    pub fn compact(&self) -> std::io::Result<()> {
        let mut inner = self.inner.lock().expect("journal lock");
        self.compact_locked(&mut inner)
    }

    /// Rewrites fully-terminal closed segments down to their verdicts and
    /// enforces the directory size cap (oldest closed segments deleted
    /// first). Runs with the journal lock held — compaction is rare
    /// (segment rotation) and never on the submit path.
    fn compact_locked(&self, inner: &mut JournalInner) -> std::io::Result<()> {
        // Journal-wide view: which jobs are terminal, and each job's
        // submit info (terminal verdicts must stay self-contained).
        let segments = list_segments(&self.dir)?;
        let mut terminal: HashSet<u64> = HashSet::new();
        let mut submits: HashMap<u64, (String, String, Option<String>)> = HashMap::new();
        let mut per_segment: Vec<(u64, PathBuf, Vec<Record>)> = Vec::new();
        for (seq, path) in segments {
            let mut bytes = Vec::new();
            File::open(&path)?.read_to_end(&mut bytes)?;
            let records = decode_records(&bytes);
            for r in &records {
                match r {
                    Record::Submitted {
                        id,
                        property,
                        body,
                        key,
                    } => {
                        submits.insert(*id, (property.clone(), body.clone(), key.clone()));
                    }
                    Record::Completed { id, .. }
                    | Record::Failed { id, .. }
                    | Record::Quarantined { id }
                    | Record::Verdict { id, .. } => {
                        terminal.insert(*id);
                    }
                    _ => {}
                }
            }
            per_segment.push((seq, path, records));
        }
        for (seq, path, records) in &per_segment {
            if *seq == inner.active_seq {
                continue; // never touch the active segment
            }
            let all_terminal = records
                .iter()
                .filter_map(Record::id)
                .all(|id| terminal.contains(&id));
            if !all_terminal {
                continue;
            }
            // Keep only self-contained verdicts (and quarantine pins).
            let mut kept: Vec<Record> = Vec::new();
            for r in records {
                match r {
                    Record::Completed {
                        id,
                        envelope,
                        cacheable,
                    } => {
                        if let Some((property, body, key)) = submits.get(id) {
                            kept.push(Record::Verdict {
                                id: *id,
                                property: property.clone(),
                                body: body.clone(),
                                key: key.clone(),
                                envelope: envelope.clone(),
                                cacheable: *cacheable,
                            });
                        }
                    }
                    Record::Verdict { .. } | Record::Quarantined { .. } => kept.push(r.clone()),
                    _ => {}
                }
            }
            let tmp = path.with_extension("tmp");
            {
                let mut f = File::create(&tmp)?;
                for r in &kept {
                    f.write_all(&encode_record(r))?;
                }
                f.sync_data()?;
            }
            fs::rename(&tmp, path)?;
            crate::metrics::JOURNAL_COMPACTIONS.inc();
        }
        // Size cap: drop the oldest closed segments until under the cap.
        let mut segments = list_segments(&self.dir)?;
        let mut total: u64 = segments
            .iter()
            .map(|(_, p)| fs::metadata(p).map(|m| m.len()).unwrap_or(0))
            .sum();
        segments.retain(|(seq, _)| *seq != inner.active_seq);
        for (_, path) in segments {
            if total <= self.config.cap_bytes {
                break;
            }
            let len = fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
            fs::remove_file(&path)?;
            total = total.saturating_sub(len);
        }
        Ok(())
    }

    /// Fsyncs the active segment (graceful-shutdown flush).
    ///
    /// # Errors
    ///
    /// Propagates the fsync error.
    pub fn sync(&self) -> std::io::Result<()> {
        self.inner.lock().expect("journal lock").active.sync_data()
    }
}

/// Reads every record from every segment of `dir` in order. Missing
/// directories replay as empty (first boot).
///
/// # Errors
///
/// Propagates I/O errors other than a missing directory.
pub fn replay_dir(dir: &Path) -> std::io::Result<Vec<Record>> {
    if !dir.exists() {
        return Ok(Vec::new());
    }
    let mut records = Vec::new();
    for (_, path) in list_segments(dir)? {
        let mut bytes = Vec::new();
        File::open(&path)?.read_to_end(&mut bytes)?;
        records.extend(decode_records(&bytes));
    }
    Ok(records)
}

/// Terminal outcome of a replayed job.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplayTerminal {
    /// Finished with this response envelope (`cacheable` controls LRU
    /// restoration).
    Completed {
        /// The exact response envelope that was served.
        envelope: Json,
        /// Whether the verdict may enter the LRU cache.
        cacheable: bool,
    },
    /// Finished with an error.
    Failed(String),
    /// Pinned as poison by an earlier replay.
    Quarantined,
}

/// Everything replay learned about one job.
#[derive(Debug, Clone, Default)]
pub struct ReplayJob {
    /// Property family from the submit record.
    pub property: Option<String>,
    /// Raw request body from the submit record.
    pub body: Option<String>,
    /// Idempotency key from the submit record.
    pub key: Option<String>,
    /// Number of `Started` records (attempt count).
    pub starts: u32,
    /// Crash-signature weight: `Started` records not excused by an
    /// outstanding remote attempt. A crash while a fleet worker held the
    /// job says nothing about the job being poison — the local process
    /// was only waiting on a socket — so a `RemoteAttempt` after a
    /// `Started` subtracts that start from the weight, and a
    /// `LocalFallback` (the job came back for local compute) adds it
    /// back. Quarantine triggers on this weight, not on raw `starts`.
    pub crash_weight: u32,
    /// Whether the latest lifecycle record left the job in remote hands.
    pub remote: bool,
    /// Terminal state, when one was journaled.
    pub terminal: Option<ReplayTerminal>,
}

/// The digested journal: per-job state plus the clean-shutdown flag.
#[derive(Debug, Default)]
pub struct ReplayState {
    /// Per-job replayed state, keyed by job id.
    pub jobs: HashMap<u64, ReplayJob>,
    /// Whether the journal's final record is a clean-shutdown marker.
    pub clean_shutdown: bool,
    /// Total records replayed.
    pub records: u64,
}

impl ReplayState {
    /// Folds a record stream into per-job state.
    pub fn digest(records: &[Record]) -> ReplayState {
        let mut state = ReplayState {
            clean_shutdown: matches!(records.last(), Some(Record::CleanShutdown)),
            records: records.len() as u64,
            ..ReplayState::default()
        };
        for record in records {
            let Some(id) = record.id() else { continue };
            let job = state.jobs.entry(id).or_default();
            match record {
                Record::Submitted {
                    property,
                    body,
                    key,
                    ..
                } => {
                    job.property = Some(property.clone());
                    job.body = Some(body.clone());
                    job.key.clone_from(key);
                }
                Record::Started { .. } => {
                    job.starts += 1;
                    job.crash_weight += 1;
                    job.remote = false;
                }
                Record::RemoteAttempt { .. } => {
                    if !job.remote {
                        job.remote = true;
                        job.crash_weight = job.crash_weight.saturating_sub(1);
                    }
                }
                Record::LocalFallback { .. } => {
                    if job.remote {
                        job.remote = false;
                        job.crash_weight += 1;
                    }
                }
                // Shard-granular dispatch mirrors the whole-job records:
                // any live shard attempt means a crash during the window is
                // excused (the work was in remote hands), while the first
                // shard falling back to a local solve restores the local
                // crash accounting.
                Record::ShardAttempt { .. } => {
                    if !job.remote {
                        job.remote = true;
                        job.crash_weight = job.crash_weight.saturating_sub(1);
                    }
                }
                Record::ShardFallback { .. } => {
                    if job.remote {
                        job.remote = false;
                        job.crash_weight += 1;
                    }
                }
                Record::Completed {
                    envelope,
                    cacheable,
                    ..
                } => {
                    job.terminal = Some(ReplayTerminal::Completed {
                        envelope: envelope.clone(),
                        cacheable: *cacheable,
                    });
                }
                Record::Failed { error, .. } => {
                    job.terminal = Some(ReplayTerminal::Failed(error.clone()));
                }
                Record::Quarantined { .. } => {
                    job.terminal = Some(ReplayTerminal::Quarantined);
                }
                Record::Verdict {
                    property,
                    body,
                    key,
                    envelope,
                    cacheable,
                    ..
                } => {
                    job.property = Some(property.clone());
                    job.body = Some(body.clone());
                    job.key.clone_from(key);
                    job.terminal = Some(ReplayTerminal::Completed {
                        envelope: envelope.clone(),
                        cacheable: *cacheable,
                    });
                }
                Record::CleanShutdown => {}
            }
        }
        state
    }

    /// The largest job id seen (0 when the journal is empty).
    pub fn max_id(&self) -> u64 {
        self.jobs.keys().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("raven_journal_{name}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn submitted(id: u64, key: Option<&str>) -> Record {
        Record::Submitted {
            id,
            property: "uap".to_string(),
            body: format!("{{\"job\":{id}}}"),
            key: key.map(str::to_string),
        }
    }

    fn completed(id: u64) -> Record {
        Record::Completed {
            id,
            envelope: Json::obj([("result", Json::from(id as f64))]),
            cacheable: true,
        }
    }

    #[test]
    fn records_roundtrip_through_the_wire_format() {
        let records = vec![
            submitted(1, Some("k1")),
            Record::Started { id: 1 },
            completed(1),
            submitted(2, None),
            Record::Started { id: 2 },
            Record::Failed {
                id: 2,
                error: "boom".to_string(),
            },
            Record::Quarantined { id: 3 },
            Record::RemoteAttempt {
                id: 4,
                worker: "w-1".to_string(),
            },
            Record::LocalFallback { id: 4 },
            Record::ShardAttempt {
                id: 5,
                shard: 2,
                worker: "w-2".to_string(),
            },
            Record::ShardFallback { id: 5, shard: 2 },
            Record::CleanShutdown,
        ];
        let mut bytes = Vec::new();
        for r in &records {
            bytes.extend_from_slice(&encode_record(r));
        }
        assert_eq!(decode_records(&bytes), records);
    }

    #[test]
    fn torn_tail_and_corruption_stop_decoding_without_panicking() {
        let mut bytes = encode_record(&submitted(1, None));
        bytes.extend_from_slice(&encode_record(&completed(1)));
        let whole = decode_records(&bytes).len();
        assert_eq!(whole, 2);
        // Torn tail: drop the last 3 bytes.
        let torn = &bytes[..bytes.len() - 3];
        assert_eq!(decode_records(torn).len(), 1);
        // Bit flip inside the second payload: checksum rejects it.
        let mut corrupt = bytes.clone();
        let n = corrupt.len();
        corrupt[n - 2] ^= 0x40;
        assert_eq!(decode_records(&corrupt).len(), 1);
    }

    #[test]
    fn journal_appends_replay_in_order_across_reopens() {
        let dir = tmp_dir("reopen");
        {
            let j = Journal::open(&dir, JournalConfig::default()).unwrap();
            j.append(&submitted(1, None), true).unwrap();
            j.append(&Record::Started { id: 1 }, true).unwrap();
        }
        {
            // A reopen (restart) starts a new segment; order is preserved.
            let j = Journal::open(&dir, JournalConfig::default()).unwrap();
            j.append(&completed(1), false).unwrap();
        }
        let records = replay_dir(&dir).unwrap();
        assert_eq!(records.len(), 3);
        assert!(matches!(records[2], Record::Completed { id: 1, .. }));
        let state = ReplayState::digest(&records);
        assert_eq!(state.jobs.len(), 1);
        assert_eq!(state.jobs[&1].starts, 1);
        assert!(matches!(
            state.jobs[&1].terminal,
            Some(ReplayTerminal::Completed { .. })
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn replay_counts_crash_signatures_and_flags_clean_shutdown() {
        let records = vec![
            submitted(7, Some("key-7")),
            Record::Started { id: 7 },
            Record::Started { id: 7 }, // second crash-while-running
        ];
        let state = ReplayState::digest(&records);
        assert_eq!(state.jobs[&7].starts, 2);
        assert!(state.jobs[&7].terminal.is_none());
        assert!(!state.clean_shutdown);
        assert_eq!(state.max_id(), 7);

        let mut clean = records;
        clean.push(Record::CleanShutdown);
        assert!(ReplayState::digest(&clean).clean_shutdown);
    }

    #[test]
    fn remote_attempts_excuse_crash_signatures() {
        let remote = |id| Record::RemoteAttempt {
            id,
            worker: "w-1".to_string(),
        };
        // Crash while a fleet worker held the job: not a poison signature.
        let records = vec![
            submitted(9, None),
            Record::Started { id: 9 },
            remote(9),
            Record::Started { id: 9 }, // restart, re-dispatched
            remote(9),
        ];
        let state = ReplayState::digest(&records);
        assert_eq!(state.jobs[&9].starts, 2);
        assert_eq!(state.jobs[&9].crash_weight, 0);
        assert!(state.jobs[&9].remote);

        // Falling back to local compute restores the signature; duplicate
        // remote attempts (retries on other workers) excuse only one start.
        let records = vec![
            submitted(9, None),
            Record::Started { id: 9 },
            remote(9),
            remote(9),
            Record::LocalFallback { id: 9 },
        ];
        let state = ReplayState::digest(&records);
        assert_eq!(state.jobs[&9].crash_weight, 1);
        assert!(!state.jobs[&9].remote);

        // Plain local runs are unchanged: two starts, weight two.
        let records = vec![
            submitted(9, None),
            Record::Started { id: 9 },
            Record::Started { id: 9 },
        ];
        assert_eq!(ReplayState::digest(&records).jobs[&9].crash_weight, 2);
    }

    #[test]
    fn shard_records_excuse_crash_signatures_like_whole_job_ones() {
        let attempt = |id, shard| Record::ShardAttempt {
            id,
            shard,
            worker: "w-1".to_string(),
        };
        // Crash while shards were in remote hands: excused, like a
        // whole-job RemoteAttempt. Attempts on several shards excuse only
        // the one start.
        let records = vec![
            submitted(11, None),
            Record::Started { id: 11 },
            attempt(11, 0),
            attempt(11, 1),
            Record::Started { id: 11 }, // restart, re-dispatched
            attempt(11, 0),
        ];
        let state = ReplayState::digest(&records);
        assert_eq!(state.jobs[&11].starts, 2);
        assert_eq!(state.jobs[&11].crash_weight, 0);
        assert!(state.jobs[&11].remote);

        // A shard falling back to local compute restores the crash
        // accounting for the whole job.
        let records = vec![
            submitted(11, None),
            Record::Started { id: 11 },
            attempt(11, 0),
            Record::ShardFallback { id: 11, shard: 0 },
        ];
        let state = ReplayState::digest(&records);
        assert_eq!(state.jobs[&11].crash_weight, 1);
        assert!(!state.jobs[&11].remote);
    }

    #[test]
    fn rotation_compacts_fully_terminal_segments_to_verdicts() {
        let dir = tmp_dir("compact");
        let config = JournalConfig {
            segment_bytes: 1, // rotate after every append
            cap_bytes: u64::MAX,
        };
        let j = Journal::open(&dir, config).unwrap();
        j.append(&submitted(1, Some("k1")), true).unwrap();
        j.append(&Record::Started { id: 1 }, true).unwrap();
        j.append(&completed(1), false).unwrap();
        // The last append rotated again: every closed segment is now fully
        // terminal and holds at most a self-contained verdict.
        let records = replay_dir(&dir).unwrap();
        let verdicts: Vec<_> = records
            .iter()
            .filter(|r| matches!(r, Record::Verdict { .. }))
            .collect();
        assert_eq!(verdicts.len(), 1, "compacted to one verdict: {records:?}");
        let state = ReplayState::digest(&records);
        let job = &state.jobs[&1];
        assert_eq!(job.key.as_deref(), Some("k1"));
        assert_eq!(job.body.as_deref(), Some("{\"job\":1}"));
        assert!(matches!(
            job.terminal,
            Some(ReplayTerminal::Completed {
                cacheable: true,
                ..
            })
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn segments_with_live_jobs_survive_compaction() {
        let dir = tmp_dir("live");
        let config = JournalConfig {
            segment_bytes: 1,
            cap_bytes: u64::MAX,
        };
        let j = Journal::open(&dir, config).unwrap();
        j.append(&submitted(1, None), true).unwrap();
        j.append(&Record::Started { id: 1 }, true).unwrap();
        j.append(&submitted(2, None), true).unwrap(); // forces rotations
        let records = replay_dir(&dir).unwrap();
        let state = ReplayState::digest(&records);
        assert_eq!(
            state.jobs[&1].starts, 1,
            "non-terminal job 1 kept: {records:?}"
        );
        assert!(state.jobs[&1].body.is_some());
        assert!(state.jobs[&2].body.is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn size_cap_deletes_oldest_closed_segments() {
        let dir = tmp_dir("cap");
        let config = JournalConfig {
            segment_bytes: 1,
            cap_bytes: 200, // far below a few records
        };
        let j = Journal::open(&dir, config).unwrap();
        for id in 1..=6 {
            j.append(&submitted(id, None), false).unwrap();
            j.append(&completed(id), false).unwrap();
        }
        let total: u64 = list_segments(&dir)
            .unwrap()
            .iter()
            .map(|(_, p)| fs::metadata(p).unwrap().len())
            .sum();
        assert!(total <= 400, "dir stays near the cap, got {total}");
        let _ = fs::remove_dir_all(&dir);
    }
}
