//! Fleet dispatch: ship verification jobs to untrusted worker processes
//! and accept their answers only after replaying their proof certificates.
//!
//! Branch-and-bound verification is embarrassingly parallel across
//! properties and labels, so the obvious scaling move is fanning jobs out
//! to external `raven_worker` processes. Those processes are *untrusted*:
//! they may crash, stall, disconnect mid-frame, or — the interesting case
//! — lie. The server therefore never takes a remote verdict at face
//! value. Every remote result must arrive with a proof certificate, the
//! server replays that certificate in-process with `raven_check`'s exact
//! dyadic-rational checker, and the result is served only when
//!
//! 1. the replay accepts (the duals/rays/relaxation lines really do
//!    establish the claimed bound), and
//! 2. the replayed bound *implies* the claimed verdict fields
//!    (`verified`, `worst_case_hamming`, `certified_change`, …), and
//! 3. the envelope matches the job the server actually sent (property,
//!    model content hash, k, ε, feature, τ, direction, tier, degraded).
//!
//! On rejection, timeout, or disconnect the job is retried with
//! exponential backoff on another worker and finally falls back to the
//! local worker pool — so the verdict bytes served to clients are
//! identical with or without a fleet attached.
//!
//! ## Wire format
//!
//! Frames reuse the journal's framing over a plain `std::net` TCP stream:
//!
//! ```text
//! [u32 LE payload length][u64 LE FNV-1a of payload][JSON payload]
//! ```
//!
//! The conversation is strictly request/response after a one-frame
//! handshake:
//!
//! * worker → server  `{"t":"hello","worker":name,"models":{name:hash}}`
//! * server → worker  `{"t":"welcome"}`
//! * server → worker  `{"t":"job","seq":n,"property":…,"body":…,
//!   "model":…,"model_hash":…,"deadline_ms":…,"trace_id":…}`
//! * worker → server  `{"t":"result","seq":n,"envelope":…,
//!   "certificate":…,"spans":[…]}` or `{"t":"error","seq":n,"error":…}`
//!
//! `trace_id` (hex) rides along when the dispatching request is traced;
//! the worker buffers its spans under that id (timestamps relative to job
//! receipt) and ships them back in `spans`, where the server rebases them
//! onto its own clock and stitches them under the dispatch span. Both
//! fields are optional and ignored by peers that don't understand them —
//! tracing never changes verdict bytes.
//!
//! ## Reputation
//!
//! A per-worker ledger (keyed by the worker's *name* from its hello, so
//! reconnecting does not launder strikes) counts certificate rejections.
//! At `reject_strikes` rejections the worker is quarantined for
//! `probation`: no jobs are dispatched to it until the window expires,
//! after which one accepted certificate clears its strikes (mirroring the
//! two-crash job quarantine from the journal). Timeouts and disconnects
//! never strike — slowness is not dishonesty.
//!
//! ## Residual trust
//!
//! The checker replays the LP *solution* evidence, not the LP *encoding*:
//! a worker that fabricates an easier LP (wrong rows for the network)
//! with a valid proof of *that* LP would pass the gate. Closing this —
//! replaying the encoding from the model hash — is the open checker item
//! in ROADMAP.md. The gate still pins everything the certificate can
//! express, which defeats tampered duals, flipped verdicts, and any
//! claimed bound tighter than the evidence.

use crate::journal::{Journal, Record};
use crate::metrics;
use crate::registry::ModelRegistry;
use raven_json::Json;
use raven_nn::fnv1a64;
use std::collections::HashMap;
use std::io::{Read as _, Write as _};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Hard cap on one frame's payload: a certificate for a large MILP run is
/// hundreds of KB; 256 MiB leaves three orders of magnitude of headroom
/// while still bounding a hostile length header.
pub const MAX_FRAME_BYTES: usize = 256 * 1024 * 1024;

/// Cap on trace records a worker ships home per job: observability must
/// not balloon result frames (records past the cap are simply dropped —
/// the trace buffer itself is already ring-bounded).
const MAX_SHIPPED_SPANS: usize = 512;

/// Fleet tunables (server side).
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Socket-level I/O patience per dispatch round trip, on top of the
    /// job's own solve deadline (`--fleet-timeout-ms`).
    pub io_timeout: Duration,
    /// Quarantine length after repeated certificate rejections
    /// (`--worker-probation-ms`).
    pub probation: Duration,
    /// Certificate rejections before a worker is quarantined.
    pub reject_strikes: u32,
    /// Remote attempts (distinct workers preferred) before local fallback.
    pub dispatch_attempts: u32,
    /// First retry backoff; doubles per attempt.
    pub backoff_base: Duration,
    /// Input-region sub-boxes per fleet-eligible UAP job
    /// (`--fleet-shards`). 1 dispatches whole jobs exactly as before.
    pub shards: u32,
    /// Remote retries per shard (on top of the first attempt) before that
    /// shard is solved locally (`--shard-retries`). Other shards' accepted
    /// results are kept.
    pub shard_retries: u32,
    /// Saturation-aware admission (`--fleet-when-saturated`): dispatch
    /// remotely only when the local pool is saturated (all workers busy or
    /// jobs queued). Off means always prefer remote, as before.
    pub when_saturated: bool,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            io_timeout: Duration::from_secs(10),
            probation: Duration::from_secs(60),
            reject_strikes: 2,
            dispatch_attempts: 3,
            backoff_base: Duration::from_millis(100),
            shards: 1,
            shard_retries: 2,
            when_saturated: true,
        }
    }
}

/// Why a frame read failed.
#[derive(Debug)]
pub enum FrameError {
    /// The deadline passed with no complete frame.
    Timeout,
    /// The peer closed the stream (possibly mid-frame).
    Disconnected,
    /// The stop flag was raised while waiting.
    Stopped,
    /// Length overflow, checksum mismatch, or unparseable payload.
    Corrupt(String),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Timeout => write!(f, "timed out waiting for a frame"),
            FrameError::Disconnected => write!(f, "peer disconnected"),
            FrameError::Stopped => write!(f, "stopped while waiting for a frame"),
            FrameError::Corrupt(why) => write!(f, "corrupt frame: {why}"),
        }
    }
}

/// A framed connection: buffers partial reads so a frame split across
/// packets (or a timeout mid-header) never desynchronizes the stream.
pub struct FrameConn {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl FrameConn {
    /// Wraps a connected stream. Read timeouts are managed per call.
    pub fn new(stream: TcpStream) -> FrameConn {
        FrameConn {
            stream,
            buf: Vec::new(),
        }
    }

    /// Writes one frame (length, FNV-1a checksum, JSON payload).
    ///
    /// # Errors
    ///
    /// Propagates socket write errors.
    pub fn write_frame(&mut self, payload: &Json) -> std::io::Result<()> {
        let bytes = payload.to_string().into_bytes();
        let mut out = Vec::with_capacity(12 + bytes.len());
        out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
        out.extend_from_slice(&fnv1a64(&bytes).to_le_bytes());
        out.extend_from_slice(&bytes);
        self.stream.write_all(&out)?;
        self.stream.flush()
    }

    /// Reads one complete frame, polling in short slices so `deadline`
    /// and `stop` are honored even while the peer trickles bytes.
    ///
    /// # Errors
    ///
    /// [`FrameError`] — timeout, disconnect, stop, or corruption.
    pub fn read_frame(
        &mut self,
        deadline: Option<Instant>,
        stop: Option<&AtomicBool>,
    ) -> Result<Json, FrameError> {
        loop {
            if let Some(frame) = self.try_decode()? {
                return Ok(frame);
            }
            if stop.is_some_and(|s| s.load(Ordering::SeqCst)) {
                return Err(FrameError::Stopped);
            }
            if deadline.is_some_and(|d| Instant::now() >= d) {
                return Err(FrameError::Timeout);
            }
            let _ = self
                .stream
                .set_read_timeout(Some(Duration::from_millis(200)));
            let mut chunk = [0u8; 64 * 1024];
            match self.stream.read(&mut chunk) {
                Ok(0) => return Err(FrameError::Disconnected),
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut => {}
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return Err(FrameError::Disconnected),
            }
        }
    }

    /// Decodes one frame from the buffer when a whole one has arrived.
    fn try_decode(&mut self) -> Result<Option<Json>, FrameError> {
        if self.buf.len() < 12 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(self.buf[..4].try_into().unwrap()) as usize;
        if len > MAX_FRAME_BYTES {
            return Err(FrameError::Corrupt(format!("frame length {len} over cap")));
        }
        if self.buf.len() < 12 + len {
            return Ok(None);
        }
        let crc = u64::from_le_bytes(self.buf[4..12].try_into().unwrap());
        let payload = &self.buf[12..12 + len];
        if fnv1a64(payload) != crc {
            return Err(FrameError::Corrupt("checksum mismatch".to_string()));
        }
        let text = std::str::from_utf8(payload)
            .map_err(|_| FrameError::Corrupt("payload not utf-8".to_string()))?;
        let json =
            Json::parse(text).map_err(|e| FrameError::Corrupt(format!("invalid json: {e}")))?;
        self.buf.drain(..12 + len);
        Ok(Some(json))
    }
}

/// One connected worker process.
struct WorkerConn {
    /// Self-reported name from the hello frame (the reputation key).
    name: String,
    /// Models the worker loaded, name → content hash hex.
    models: HashMap<String, String>,
    /// The framed stream, locked for the duration of one round trip.
    conn: Mutex<FrameConn>,
    /// Claimed by a dispatch in flight.
    busy: AtomicBool,
    /// Next job sequence number on this connection.
    seq: AtomicU64,
}

/// Per-worker reputation and counters, keyed by worker name so a
/// reconnect (or a second connection under the same name) inherits its
/// history instead of laundering it.
#[derive(Debug, Default, Clone)]
pub struct WorkerLedger {
    /// Consecutive certificate rejections since the last accept.
    pub strikes: u32,
    /// Quarantined until this instant (no dispatches while in the past
    /// of this bound).
    quarantined_until: Option<Instant>,
    /// Results accepted after certificate replay.
    pub accepted: u64,
    /// Results rejected by the certificate gate.
    pub rejected: u64,
    /// Dispatches that timed out.
    pub timeouts: u64,
    /// Dispatches lost to socket errors or disconnects.
    pub disconnects: u64,
    /// Times this worker entered quarantine.
    pub quarantines: u64,
    /// Sum of accepted/rejected round-trip times, milliseconds.
    pub rtt_millis_sum: f64,
    /// Round trips in `rtt_millis_sum`.
    pub rtt_count: u64,
}

impl WorkerLedger {
    fn quarantined(&self, now: Instant) -> bool {
        self.quarantined_until.is_some_and(|until| now < until)
    }
}

/// What the server expects a remote result to prove — derived from the
/// parsed spec *before* dispatch, so the gate compares against the
/// server's own reading of the request, never the worker's.
pub(crate) struct Expected {
    /// `"uap"` or `"monotonicity"`.
    pub property: String,
    /// Model content hash (hex) the job must have run against.
    pub model_hash: String,
    /// Whether the client asked for the certificate in the envelope.
    pub want_certificate: bool,
    /// Property-specific fields.
    pub kind: ExpectedKind,
}

/// Property-specific expectations.
pub(crate) enum ExpectedKind {
    /// UAP: execution count and perturbation radius.
    Uap {
        /// Number of executions.
        k: usize,
        /// Perturbation radius.
        eps: f64,
    },
    /// Monotonicity: the constrained feature and its direction.
    Mono {
        /// Perturbation radius.
        eps: f64,
        /// Monotone feature index.
        feature: usize,
        /// Feature shift τ.
        tau: f64,
        /// Non-decreasing (`true`) or non-increasing.
        increasing: bool,
    },
}

/// Everything `dispatch` needs besides the expectation.
pub(crate) struct DispatchCtx<'a> {
    /// Job id (for `RemoteAttempt` journal records).
    pub job_id: u64,
    /// Property name, as in the job body.
    pub property: &'a str,
    /// Raw request body text, forwarded verbatim.
    pub body: &'a str,
    /// Model name the worker should look up.
    pub model: &'a str,
    /// Model content hash (hex), advertised in the job frame.
    pub model_hash: &'a str,
    /// Effective solve deadline shipped to the worker.
    pub deadline_ms: Option<u64>,
    /// Journal for remote-attempt records.
    pub journal: Option<&'a Journal>,
    /// The owning request's trace context. When present, the job frame
    /// carries the trace id (so the worker tags its spans with it) and the
    /// result frame's spans are stitched under this dispatch's span.
    pub trace: Option<raven_obs::TraceCtx>,
}

/// The server-side fleet: a listener workers connect to, the set of live
/// connections, and the reputation ledger.
pub struct Fleet {
    listener: TcpListener,
    config: FleetConfig,
    workers: Mutex<Vec<Arc<WorkerConn>>>,
    ledger: Mutex<HashMap<String, WorkerLedger>>,
}

impl Fleet {
    /// Binds the fleet listener (nonblocking; the acceptor thread polls).
    ///
    /// # Errors
    ///
    /// Returns the bind error.
    pub fn bind(addr: &str, config: FleetConfig) -> std::io::Result<Fleet> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(Fleet {
            listener,
            config,
            workers: Mutex::new(Vec::new()),
            ledger: Mutex::new(HashMap::new()),
        })
    }

    /// The bound fleet address (read the ephemeral port from here).
    ///
    /// # Errors
    ///
    /// Propagates the OS error (practically infallible).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Spawns the acceptor thread: accepts worker connections, performs
    /// the hello handshake, and registers them for dispatch. Exits when
    /// `stop` is raised.
    pub fn spawn_acceptor(self: &Arc<Fleet>, stop: Arc<AtomicBool>) -> std::thread::JoinHandle<()> {
        let fleet = Arc::clone(self);
        std::thread::Builder::new()
            .name("raven-fleet-accept".to_string())
            .spawn(move || {
                while !stop.load(Ordering::SeqCst) {
                    match fleet.listener.accept() {
                        Ok((stream, _)) => fleet.register(stream),
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => std::thread::sleep(Duration::from_millis(5)),
                    }
                }
            })
            .expect("spawn fleet acceptor")
    }

    /// Handshakes one inbound connection and registers the worker.
    fn register(&self, stream: TcpStream) {
        let _ = stream.set_nodelay(true);
        let mut conn = FrameConn::new(stream);
        let deadline = Instant::now() + self.config.io_timeout;
        let hello = match conn.read_frame(Some(deadline), None) {
            Ok(frame) => frame,
            Err(e) => {
                eprintln!("raven-serve: fleet handshake failed: {e}");
                return;
            }
        };
        if hello.get("t").and_then(Json::as_str) != Some("hello") {
            eprintln!("raven-serve: fleet peer sent a non-hello first frame");
            return;
        }
        let Some(name) = hello.get("worker").and_then(Json::as_str) else {
            eprintln!("raven-serve: fleet hello missing worker name");
            return;
        };
        let mut models = HashMap::new();
        if let Some(Json::Obj(fields)) = hello.get("models") {
            for (model, hash) in fields {
                if let Some(hash) = hash.as_str() {
                    models.insert(model.clone(), hash.to_string());
                }
            }
        }
        if conn
            .write_frame(&Json::obj([("t", Json::from("welcome"))]))
            .is_err()
        {
            return;
        }
        let worker = Arc::new(WorkerConn {
            name: name.to_string(),
            models,
            conn: Mutex::new(conn),
            busy: AtomicBool::new(false),
            seq: AtomicU64::new(0),
        });
        self.ledger
            .lock()
            .expect("fleet ledger lock")
            .entry(name.to_string())
            .or_default();
        let mut workers = self.workers.lock().expect("fleet workers lock");
        workers.push(worker);
        metrics::FLEET_WORKERS.set(workers.len() as i64);
        eprintln!("raven-serve: fleet worker {name:?} connected");
    }

    /// Claims an idle, non-quarantined worker that has the model, marking
    /// it busy. Workers whose names appear in `tried` are deprioritized
    /// (retries prefer *another* worker) but allowed when nothing else is
    /// available.
    fn claim(&self, model: &str, model_hash: &str, tried: &[String]) -> Option<Arc<WorkerConn>> {
        let now = Instant::now();
        let ledger = self.ledger.lock().expect("fleet ledger lock");
        let workers = self.workers.lock().expect("fleet workers lock");
        let eligible = |w: &&Arc<WorkerConn>| {
            w.models.get(model).map(String::as_str) == Some(model_hash)
                && !ledger.get(&w.name).is_some_and(|l| l.quarantined(now))
        };
        let fresh = workers
            .iter()
            .filter(eligible)
            .find(|w| !tried.contains(&w.name) && !w.busy.swap(true, Ordering::SeqCst));
        if let Some(w) = fresh {
            return Some(w.clone());
        }
        workers
            .iter()
            .filter(eligible)
            .find(|w| !w.busy.swap(true, Ordering::SeqCst))
            .cloned()
    }

    /// Removes a dead or desynchronized connection from the pool.
    fn drop_worker(&self, worker: &Arc<WorkerConn>) {
        let mut workers = self.workers.lock().expect("fleet workers lock");
        workers.retain(|w| !Arc::ptr_eq(w, worker));
        metrics::FLEET_WORKERS.set(workers.len() as i64);
    }

    /// Records an accepted certificate: strikes clear, quarantine lifts.
    fn ledger_accept(&self, name: &str, rtt: Duration) {
        let mut ledger = self.ledger.lock().expect("fleet ledger lock");
        let entry = ledger.entry(name.to_string()).or_default();
        entry.accepted += 1;
        entry.strikes = 0;
        entry.quarantined_until = None;
        entry.rtt_millis_sum += rtt.as_secs_f64() * 1e3;
        entry.rtt_count += 1;
    }

    /// Records a certificate rejection; quarantines at the strike cap.
    fn ledger_reject(&self, name: &str, rtt: Duration) {
        let mut ledger = self.ledger.lock().expect("fleet ledger lock");
        let entry = ledger.entry(name.to_string()).or_default();
        entry.rejected += 1;
        entry.strikes += 1;
        entry.rtt_millis_sum += rtt.as_secs_f64() * 1e3;
        entry.rtt_count += 1;
        if entry.strikes >= self.config.reject_strikes {
            entry.quarantined_until = Some(Instant::now() + self.config.probation);
            entry.quarantines += 1;
            metrics::FLEET_QUARANTINED_WORKERS.inc();
            eprintln!(
                "raven-serve: fleet worker {name:?} quarantined after {} certificate rejections",
                entry.strikes
            );
        }
    }

    /// Bumps a non-strike failure counter (timeouts/disconnects).
    fn ledger_mishap(&self, name: &str, timeout: bool) {
        let mut ledger = self.ledger.lock().expect("fleet ledger lock");
        let entry = ledger.entry(name.to_string()).or_default();
        if timeout {
            entry.timeouts += 1;
        } else {
            entry.disconnects += 1;
        }
    }

    /// The attached [`FleetConfig`] (the api layer reads the shard count
    /// and the saturation-aware admission gate from here).
    pub(crate) fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Sleeps the exponential backoff for `exp` completed failures. The
    /// shift and multiply both saturate so a hostile or miscounted retry
    /// counter can never overflow into a panic (or a zero-length sleep).
    fn backoff(&self, exp: u32) {
        let factor = 1u32.checked_shl(exp).unwrap_or(u32::MAX);
        std::thread::sleep(self.config.backoff_base.saturating_mul(factor));
    }

    /// Ships the job to fleet workers until one answer survives the
    /// certificate gate. Returns the accepted envelope, or `None` when
    /// every attempt failed (the caller computes locally). Journals one
    /// `RemoteAttempt` per attempt and a `LocalFallback` when attempts
    /// were made but none succeeded.
    pub(crate) fn dispatch(
        &self,
        ctx: &DispatchCtx<'_>,
        expected: &Expected,
        cancel: &AtomicBool,
    ) -> Option<Json> {
        let (outcome, attempts) =
            self.dispatch_inner(ctx, expected, cancel, None, self.config.dispatch_attempts);
        if outcome.is_none() && attempts > 0 {
            metrics::FLEET_LOCAL_FALLBACKS.inc();
            if let Some(journal) = ctx.journal {
                let _ = journal.append(&Record::LocalFallback { id: ctx.job_id }, false);
            }
        } else if outcome.is_some() {
            metrics::FLEET_REMOTE_SOLVES.inc();
        }
        outcome.map(|(envelope, _certificate)| envelope)
    }

    /// Ships one input-region shard of a UAP job to fleet workers.
    /// Returns the accepted `(envelope, certificate)` pair — the
    /// certificate feeds the merged proof — or `None` when every remote
    /// attempt failed, in which case the caller solves this shard locally
    /// and other shards' accepted results are kept (fault containment is
    /// per shard, never per job). Journals a `ShardAttempt` per attempt
    /// and a `ShardFallback` when attempts were made but none survived.
    pub(crate) fn dispatch_shard(
        &self,
        ctx: &DispatchCtx<'_>,
        expected: &Expected,
        cancel: &AtomicBool,
        shard: u32,
        shards: u32,
    ) -> Option<(Json, Json)> {
        let attempts_cap = self.config.shard_retries.saturating_add(1);
        let (outcome, attempts) =
            self.dispatch_inner(ctx, expected, cancel, Some((shard, shards)), attempts_cap);
        if outcome.is_none() && attempts > 0 {
            metrics::FLEET_SHARD_FALLBACKS.inc();
            if let Some(journal) = ctx.journal {
                let _ = journal.append(
                    &Record::ShardFallback {
                        id: ctx.job_id,
                        shard,
                    },
                    false,
                );
            }
        } else if outcome.is_some() {
            metrics::FLEET_SHARD_REMOTE.inc();
        }
        outcome
    }

    /// The shared dispatch loop behind [`Fleet::dispatch`] (whole jobs)
    /// and [`Fleet::dispatch_shard`] (one sub-box of a sharded UAP job).
    /// Retries with exponential backoff on distinct workers until one
    /// reply survives the certificate gate or `max_attempts` is spent.
    /// Returns the accepted `(envelope, certificate)` and the number of
    /// attempts actually made.
    fn dispatch_inner(
        &self,
        ctx: &DispatchCtx<'_>,
        expected: &Expected,
        cancel: &AtomicBool,
        shard: Option<(u32, u32)>,
        max_attempts: u32,
    ) -> (Option<(Json, Json)>, u32) {
        let mut tried: Vec<String> = Vec::new();
        let mut attempts: u32 = 0;
        // The dispatch span is what the worker's remote spans hang under
        // after stitching (it records into the trace at guard drop; the
        // children reference it by id, so ordering does not matter).
        let dispatch_span = raven_obs::span("fleet_dispatch");
        let outcome = loop {
            if attempts >= max_attempts {
                break None;
            }
            if attempts > 0 {
                // Exponential backoff between attempts (the previous
                // worker just failed us; give the fleet a beat). Sleeping
                // *before* the claim keeps every worker dispatchable to
                // concurrent jobs and shards while we wait.
                self.backoff((attempts - 1).min(5));
            }
            let Some(worker) = self.claim(ctx.model, &expected.model_hash, &tried) else {
                break None;
            };
            attempts += 1;
            tried.push(worker.name.clone());
            if let Some(journal) = ctx.journal {
                let record = match shard {
                    Some((shard, _)) => Record::ShardAttempt {
                        id: ctx.job_id,
                        shard,
                        worker: worker.name.clone(),
                    },
                    None => Record::RemoteAttempt {
                        id: ctx.job_id,
                        worker: worker.name.clone(),
                    },
                };
                let _ = journal.append(&record, false);
            }
            metrics::FLEET_DISPATCHES.inc();
            if shard.is_some() {
                metrics::FLEET_SHARD_DISPATCHES.inc();
            }
            let t0 = Instant::now();
            let base_us = raven_obs::now_us();
            let reply = self.round_trip(&worker, ctx, cancel, shard);
            let rtt = t0.elapsed();
            match reply {
                Ok(reply) => {
                    worker.busy.store(false, Ordering::SeqCst);
                    metrics::FLEET_DISPATCH_SECONDS.observe(rtt.as_secs_f64());
                    if let Some(error) = reply.get("error").and_then(Json::as_str) {
                        // A worker-side compute error is not evidence of
                        // dishonesty (the job itself may be at fault):
                        // no strike, try elsewhere.
                        eprintln!(
                            "raven-serve: fleet worker {:?} errored on job {}: {error}",
                            worker.name, ctx.job_id
                        );
                        continue;
                    }
                    match check_remote(expected, &reply) {
                        Ok(envelope) => {
                            metrics::FLEET_ACCEPTED.inc();
                            self.ledger_accept(&worker.name, rtt);
                            // Stitch the worker's spans (shipped in the
                            // result frame, timestamped relative to its
                            // job receipt) into the request's trace.
                            if let (Some(tctx), Some(spans)) = (ctx.trace, reply.get("spans")) {
                                crate::trace::stitch_remote_records(
                                    tctx,
                                    &worker.name,
                                    dispatch_span.id(),
                                    base_us,
                                    spans,
                                );
                            }
                            let certificate =
                                reply.get("certificate").cloned().unwrap_or(Json::Null);
                            break Some((envelope, certificate));
                        }
                        Err(why) => {
                            metrics::FLEET_REJECTED.inc();
                            eprintln!(
                                "raven-serve: rejected result from fleet worker {:?} \
                                 for job {}: {why}",
                                worker.name, ctx.job_id
                            );
                            self.ledger_reject(&worker.name, rtt);
                            continue;
                        }
                    }
                }
                Err(FrameError::Stopped) => {
                    worker.busy.store(false, Ordering::SeqCst);
                    break None;
                }
                Err(FrameError::Timeout) => {
                    // The connection is desynchronized (a late reply would
                    // poison the next dispatch): drop it. The worker may
                    // reconnect with a clean stream.
                    metrics::FLEET_TIMEOUTS.inc();
                    self.ledger_mishap(&worker.name, true);
                    self.drop_worker(&worker);
                    continue;
                }
                Err(FrameError::Disconnected | FrameError::Corrupt(_)) => {
                    metrics::FLEET_DISCONNECTS.inc();
                    self.ledger_mishap(&worker.name, false);
                    self.drop_worker(&worker);
                    continue;
                }
            }
        };
        (outcome, attempts)
    }

    /// One job/result exchange on a claimed worker connection.
    fn round_trip(
        &self,
        worker: &Arc<WorkerConn>,
        ctx: &DispatchCtx<'_>,
        cancel: &AtomicBool,
        shard: Option<(u32, u32)>,
    ) -> Result<Json, FrameError> {
        let seq = worker.seq.fetch_add(1, Ordering::SeqCst);
        let mut fields = vec![
            ("t", Json::from("job")),
            ("seq", Json::from(seq as f64)),
            ("property", Json::from(ctx.property)),
            ("model", Json::from(ctx.model)),
            ("model_hash", Json::from(ctx.model_hash)),
            ("body", Json::from(ctx.body)),
        ];
        if let Some((shard, shards)) = shard {
            fields.push(("shard", Json::from(f64::from(shard))));
            fields.push(("shards", Json::from(f64::from(shards))));
        }
        if let Some(ms) = ctx.deadline_ms {
            fields.push(("deadline_ms", Json::from(ms as f64)));
        }
        if let Some(t) = ctx.trace {
            fields.push(("trace_id", Json::from(format!("{:032x}", t.trace_id))));
        }
        let job = Json::obj(fields);
        let mut conn = worker.conn.lock().expect("fleet conn lock");
        conn.write_frame(&job)
            .map_err(|_| FrameError::Disconnected)?;
        // The worker's solve may legitimately take the whole deadline;
        // the io timeout is patience on top of that.
        let wait = self.config.io_timeout
            + ctx
                .deadline_ms
                .map_or(Duration::ZERO, Duration::from_millis);
        loop {
            let reply = conn.read_frame(Some(Instant::now() + wait), Some(cancel))?;
            if reply.get("t").and_then(Json::as_str) != Some("result")
                && reply.get("t").and_then(Json::as_str) != Some("error")
            {
                return Err(FrameError::Corrupt("unexpected frame type".to_string()));
            }
            // A stale reply (an earlier timed-out seq) would have dropped
            // the connection already; still, skip mismatched sequence
            // numbers defensively.
            if reply.get("seq").and_then(Json::as_f64) == Some(seq as f64) {
                return Ok(reply);
            }
        }
    }

    /// Per-worker counters as Prometheus text (appended to the static
    /// exposition tables).
    pub fn render_prometheus(&self) -> String {
        let ledger = self.ledger.lock().expect("fleet ledger lock");
        if ledger.is_empty() {
            return String::new();
        }
        let mut names: Vec<&String> = ledger.keys().collect();
        names.sort();
        let mut out = String::new();
        let series = [
            ("accepted_total", "counter", "Accepted results per worker."),
            (
                "rejected_total",
                "counter",
                "Gate-rejected results per worker.",
            ),
            ("timeouts_total", "counter", "Dispatch timeouts per worker."),
            (
                "disconnects_total",
                "counter",
                "Dispatch disconnects per worker.",
            ),
            (
                "rtt_millis_sum",
                "gauge",
                "Summed dispatch round-trip milliseconds per worker.",
            ),
            (
                "rtt_count",
                "gauge",
                "Dispatch round trips measured per worker.",
            ),
        ];
        for (suffix, kind, help) in series {
            let full = format!("raven_serve_fleet_worker_{suffix}");
            out.push_str(&format!("# HELP {full} {help}\n# TYPE {full} {kind}\n"));
            for name in &names {
                let l = &ledger[*name];
                let value = match suffix {
                    "accepted_total" => l.accepted as f64,
                    "rejected_total" => l.rejected as f64,
                    "timeouts_total" => l.timeouts as f64,
                    "disconnects_total" => l.disconnects as f64,
                    "rtt_millis_sum" => l.rtt_millis_sum,
                    _ => l.rtt_count as f64,
                };
                out.push_str(&format!("{full}{{worker=\"{name}\"}} {value}\n"));
            }
        }
        out
    }

    /// The `/v1/healthz` fleet block.
    pub fn healthz_json(&self) -> Json {
        let now = Instant::now();
        let connected: Vec<String> = self
            .workers
            .lock()
            .expect("fleet workers lock")
            .iter()
            .map(|w| w.name.clone())
            .collect();
        let ledger = self.ledger.lock().expect("fleet ledger lock");
        let mut names: Vec<&String> = ledger.keys().collect();
        names.sort();
        let workers: Vec<Json> = names
            .iter()
            .map(|name| {
                let l = &ledger[*name];
                let mean_rtt = if l.rtt_count > 0 {
                    l.rtt_millis_sum / l.rtt_count as f64
                } else {
                    0.0
                };
                Json::obj([
                    ("name", Json::from(name.as_str())),
                    ("connected", Json::from(connected.contains(name))),
                    ("quarantined", Json::from(l.quarantined(now))),
                    ("strikes", Json::from(f64::from(l.strikes))),
                    ("accepted", Json::from(l.accepted as f64)),
                    ("rejected", Json::from(l.rejected as f64)),
                    ("timeouts", Json::from(l.timeouts as f64)),
                    ("disconnects", Json::from(l.disconnects as f64)),
                    ("quarantines", Json::from(l.quarantines as f64)),
                    ("mean_rtt_millis", Json::from(mean_rtt)),
                ])
            })
            .collect();
        Json::obj([
            ("workers", Json::Arr(workers)),
            (
                "dispatches",
                Json::from(metrics::FLEET_DISPATCHES.get() as f64),
            ),
            ("accepted", Json::from(metrics::FLEET_ACCEPTED.get() as f64)),
            ("rejected", Json::from(metrics::FLEET_REJECTED.get() as f64)),
            ("timeouts", Json::from(metrics::FLEET_TIMEOUTS.get() as f64)),
            (
                "disconnects",
                Json::from(metrics::FLEET_DISCONNECTS.get() as f64),
            ),
            (
                "remote_solves",
                Json::from(metrics::FLEET_REMOTE_SOLVES.get() as f64),
            ),
            (
                "local_fallbacks",
                Json::from(metrics::FLEET_LOCAL_FALLBACKS.get() as f64),
            ),
            (
                "quarantined_workers",
                Json::from(metrics::FLEET_QUARANTINED_WORKERS.get() as f64),
            ),
            (
                "shard_dispatches",
                Json::from(metrics::FLEET_SHARD_DISPATCHES.get() as f64),
            ),
            (
                "shard_remote",
                Json::from(metrics::FLEET_SHARD_REMOTE.get() as f64),
            ),
            (
                "shard_fallbacks",
                Json::from(metrics::FLEET_SHARD_FALLBACKS.get() as f64),
            ),
            (
                "shard_merges",
                Json::from(metrics::FLEET_SHARD_MERGES.get() as f64),
            ),
            (
                "kept_local",
                Json::from(metrics::FLEET_KEPT_LOCAL.get() as f64),
            ),
        ])
    }
}

/// Relative float slack for bound-vs-verdict comparisons. The verdict's
/// bound comes from the primary solve and the certificate's from the
/// secondary (presolve-off) certified solve — two float pivot orders on
/// the same LP — so they agree only up to solver noise.
fn tol(b: f64) -> f64 {
    1e-6 * (1.0 + b.abs())
}

fn gate_err(why: impl Into<String>) -> String {
    why.into()
}

/// The certificate gate: accepts a remote result only when its
/// certificate replays cleanly in exact arithmetic AND the replayed
/// evidence implies every verdict field the certificate can express.
/// Returns the envelope to serve.
pub(crate) fn check_remote(expected: &Expected, reply: &Json) -> Result<Json, String> {
    let envelope = reply
        .get("envelope")
        .ok_or_else(|| gate_err("reply has no envelope"))?;
    let cert_json = match reply.get("certificate") {
        Some(Json::Null) | None => return Err(gate_err("reply has no certificate")),
        Some(c) => c,
    };
    // --- envelope cross-checks against the server's own spec ---
    let env_str = |field: &str| envelope.get(field).and_then(Json::as_str);
    if env_str("kind") != Some(expected.property.as_str()) {
        return Err(gate_err("envelope kind does not match the dispatched job"));
    }
    if env_str("model_hash") != Some(expected.model_hash.as_str()) {
        return Err(gate_err("envelope model hash does not match"));
    }
    if envelope.get("cached").and_then(Json::as_bool) != Some(false) {
        return Err(gate_err(
            "remote results must be freshly computed, not cached",
        ));
    }
    let result = envelope
        .get("result")
        .ok_or_else(|| gate_err("envelope has no result"))?;
    let res_f64 = |field: &str| {
        result
            .get(field)
            .and_then(Json::as_f64)
            .ok_or_else(|| gate_err(format!("result missing number field {field:?}")))
    };
    if result.get("property").and_then(Json::as_str) != Some(expected.property.as_str()) {
        return Err(gate_err("result property does not match"));
    }
    let verified = result
        .get("verified")
        .and_then(Json::as_bool)
        .ok_or_else(|| gate_err("result missing bool field \"verified\""))?;
    let tier = result
        .get("tier")
        .and_then(Json::as_str)
        .ok_or_else(|| gate_err("result missing string field \"tier\""))?;
    let degraded = result
        .get("degraded")
        .and_then(Json::as_bool)
        .ok_or_else(|| gate_err("result missing bool field \"degraded\""))?;
    // --- certificate parse + exact replay ---
    let cert = raven_check::Certificate::from_json(cert_json)
        .map_err(|e| gate_err(format!("certificate is malformed: {e}")))?;
    let want_kind = match expected.kind {
        ExpectedKind::Uap { .. } => "uap",
        ExpectedKind::Mono { .. } => "monotonicity",
    };
    if cert.kind != want_kind {
        return Err(gate_err(format!(
            "certificate kind {:?} does not match property {want_kind:?}",
            cert.kind
        )));
    }
    if cert.tier != tier {
        return Err(gate_err(format!(
            "certificate tier {:?} does not match verdict tier {tier:?}",
            cert.tier
        )));
    }
    if cert.degraded != degraded {
        return Err(gate_err("certificate degraded flag does not match verdict"));
    }
    if matches!(tier, "milp" | "lp") && cert.lp.is_none() {
        return Err(gate_err("solver-tier verdict lacks an LP proof"));
    }
    if tier == "analysis" && cert.analysis.is_none() {
        return Err(gate_err("analysis-tier verdict lacks relaxation records"));
    }
    raven_check::check_certificate(&cert)
        .map_err(|e| gate_err(format!("certificate replay rejected: {e}")))?;
    // --- the replayed bound must imply the claimed verdict ---
    match expected.kind {
        ExpectedKind::Uap { k, eps } => {
            if res_f64("k")? != k as f64 {
                return Err(gate_err("result k does not match the dispatched job"));
            }
            if res_f64("eps")? != eps {
                return Err(gate_err("result eps does not match the dispatched job"));
            }
            let wca = res_f64("worst_case_accuracy")?;
            let hamming = res_f64("worst_case_hamming")?;
            let iv = res_f64("individually_verified")?;
            if !(0.0..=k as f64).contains(&iv) {
                return Err(gate_err("individually_verified out of range"));
            }
            if (wca - (k as f64 - hamming) / k as f64).abs() > 1e-9 {
                return Err(gate_err(
                    "worst_case_accuracy inconsistent with worst_case_hamming",
                ));
            }
            if verified != (wca >= 1.0) {
                return Err(gate_err("verified flag inconsistent with accuracy bound"));
            }
            if let Some(lp) = &cert.lp {
                // The spec LP maximizes the misclassified count; the
                // certificate proves optimum ≤ claimed_bound, so the
                // soundly-claimable Hamming bound is the same clamp the
                // verifier applies.
                let h_cert = lp.claimed_bound.clamp(0.0, k as f64 - iv);
                if (hamming - h_cert).abs() > tol(h_cert) {
                    return Err(gate_err(format!(
                        "worst_case_hamming {hamming} is not the certified bound {h_cert}"
                    )));
                }
            } else {
                // Analysis tier: the Hamming bound is exactly the count of
                // unverified executions.
                if (hamming - (k as f64 - iv)).abs() > 1e-9 {
                    return Err(gate_err(
                        "analysis-tier worst_case_hamming must equal k - individually_verified",
                    ));
                }
            }
        }
        ExpectedKind::Mono {
            eps,
            feature,
            tau,
            increasing,
        } => {
            if res_f64("eps")? != eps {
                return Err(gate_err("result eps does not match the dispatched job"));
            }
            if res_f64("feature")? != feature as f64 {
                return Err(gate_err("result feature does not match"));
            }
            if res_f64("tau")? != tau {
                return Err(gate_err("result tau does not match"));
            }
            let want_dir = if increasing {
                "non-decreasing"
            } else {
                "non-increasing"
            };
            if result.get("direction").and_then(Json::as_str) != Some(want_dir) {
                return Err(gate_err("result direction does not match"));
            }
            let change = res_f64("certified_change")?;
            if verified != (change >= 0.0) {
                return Err(gate_err("verified flag inconsistent with certified_change"));
            }
            if let Some(lp) = &cert.lp {
                // The monotonicity LP minimizes the score change; the
                // certificate proves optimum ≥ claimed_bound, and the
                // verdict's certified_change is that optimum.
                if (change - lp.claimed_bound).abs() > tol(lp.claimed_bound) {
                    return Err(gate_err(format!(
                        "certified_change {change} is not the certified bound {}",
                        lp.claimed_bound
                    )));
                }
            }
        }
    }
    // --- the envelope's own certificate field must match the gated one ---
    match (expected.want_certificate, envelope.get("certificate")) {
        (true, Some(in_env)) => {
            if in_env.to_string() != cert_json.to_string() {
                return Err(gate_err(
                    "envelope certificate differs from the gated certificate",
                ));
            }
        }
        (true, None) => {
            return Err(gate_err(
                "client asked for a certificate; envelope has none",
            ))
        }
        (false, Some(_)) => {
            return Err(gate_err(
                "envelope carries an unrequested certificate field",
            ))
        }
        (false, None) => {}
    }
    Ok(envelope.clone())
}

/// Options for [`run_worker`] (the `raven_worker` binary's core loop).
pub struct WorkerOptions {
    /// Server fleet address to connect to.
    pub connect: String,
    /// Self-reported worker name (the server's reputation key).
    pub name: String,
    /// Loaded models (must content-hash-match the server's).
    pub registry: ModelRegistry,
    /// `RavenConfig::threads` per job.
    pub job_threads: usize,
    /// Delay between reconnect attempts.
    pub reconnect: Duration,
    /// Exit after the first disconnect instead of reconnecting (tests).
    pub once: bool,
    /// Worker-side result cache capacity (`--cache`; 0 disables). Keyed
    /// exactly like the server's verdict cache with the shard index folded
    /// in, so a shard retried on a warm worker skips the re-solve and
    /// re-emits the identical envelope and certificate.
    pub cache_capacity: usize,
}

/// Runs the worker loop: connect, hello, serve jobs until `stop`.
/// Reconnects with a fixed delay on disconnect unless `once`.
///
/// # Errors
///
/// Returns the *first* connect error only when no connection ever
/// succeeded and `once` is set; otherwise retries forever.
pub fn run_worker(opts: &WorkerOptions, stop: &AtomicBool) -> std::io::Result<()> {
    // The result cache outlives individual connections: a shard retried on
    // this worker after a reconnect still hits warm.
    let cache = crate::cache::ResultCache::new(opts.cache_capacity);
    let models: Vec<(String, Json)> = opts
        .registry
        .entries()
        .iter()
        .map(|e| (e.name.clone(), Json::from(e.hash_hex())))
        .collect();
    let hello = Json::obj([
        ("t", Json::from("hello")),
        ("worker", Json::from(opts.name.as_str())),
        (
            "models",
            Json::Obj(models.iter().map(|(n, h)| (n.clone(), h.clone())).collect()),
        ),
    ]);
    loop {
        if stop.load(Ordering::SeqCst) {
            return Ok(());
        }
        let stream = match TcpStream::connect(&opts.connect) {
            Ok(s) => s,
            Err(e) => {
                if opts.once {
                    return Err(e);
                }
                std::thread::sleep(opts.reconnect);
                continue;
            }
        };
        let _ = stream.set_nodelay(true);
        let mut conn = FrameConn::new(stream);
        if conn.write_frame(&hello).is_err() {
            std::thread::sleep(opts.reconnect);
            continue;
        }
        match conn.read_frame(Some(Instant::now() + Duration::from_secs(10)), Some(stop)) {
            Ok(frame) if frame.get("t").and_then(Json::as_str) == Some("welcome") => {}
            Ok(_) | Err(_) => {
                if opts.once {
                    return Ok(());
                }
                std::thread::sleep(opts.reconnect);
                continue;
            }
        }
        eprintln!(
            "raven-worker {} connected to {} ({} models)",
            opts.name,
            opts.connect,
            models.len()
        );
        worker_loop(&mut conn, opts, &cache, stop);
        if opts.once || stop.load(Ordering::SeqCst) {
            return Ok(());
        }
        std::thread::sleep(opts.reconnect);
    }
}

/// Serves jobs on one connection until it drops or `stop` is raised.
fn worker_loop(
    conn: &mut FrameConn,
    opts: &WorkerOptions,
    cache: &crate::cache::ResultCache,
    stop: &AtomicBool,
) {
    loop {
        let job = match conn.read_frame(None, Some(stop)) {
            Ok(frame) => frame,
            Err(_) => return,
        };
        if job.get("t").and_then(Json::as_str) != Some("job") {
            continue;
        }
        let seq = job.get("seq").and_then(Json::as_f64).unwrap_or(0.0);
        let property = job
            .get("property")
            .and_then(Json::as_str)
            .unwrap_or_default()
            .to_string();
        let body = job
            .get("body")
            .and_then(Json::as_str)
            .unwrap_or_default()
            .to_string();
        let deadline_ms = job
            .get("deadline_ms")
            .and_then(Json::as_f64)
            .map(|ms| ms as u64);
        // A sharded job frame names the sub-box of the perturbation region
        // this worker should solve; the worker re-derives the box from
        // (eps, dim, shard, shards) bit-identically to the server.
        let shard = match (
            job.get("shard").and_then(Json::as_f64),
            job.get("shards").and_then(Json::as_f64),
        ) {
            (Some(i), Some(n)) if n >= 1.0 && i >= 0.0 && i < n => Some((i as u32, n as u32)),
            _ => None,
        };
        // A traced job frame carries the server's trace id: buffer this
        // job's spans under it (timestamps relative to receipt, so the
        // server can rebase them onto its own clock) and ship them home
        // in the result frame for stitching.
        let trace_ctx = job
            .get("trace_id")
            .and_then(Json::as_str)
            .and_then(|hex| u128::from_str_radix(hex, 16).ok())
            .filter(|id| *id != 0)
            .map(|id| raven_obs::begin_trace(id, 0));
        let receipt_us = raven_obs::now_us();
        raven_obs::reset_thread_spans();
        raven_obs::set_current_trace(trace_ctx);
        let chaos_mode = crate::chaos::take_worker_chaos();
        if matches!(chaos_mode, Some(crate::chaos::WorkerChaos::Stall)) {
            raven_obs::set_current_trace(None);
            if let Some(ctx) = trace_ctx {
                raven_obs::discard_trace(ctx);
            }
            // Byzantine stall: never answer; the server times out and
            // retries elsewhere.
            std::thread::sleep(Duration::from_secs(30));
            return;
        }
        let computed = crate::api::remote_compute(
            &opts.registry,
            opts.job_threads,
            &property,
            body.as_bytes(),
            deadline_ms,
            shard,
            cache,
            stop,
        );
        raven_obs::set_current_trace(None);
        let spans = trace_ctx.map(|ctx| {
            let data = raven_obs::end_trace(ctx);
            // Rebase onto the job receipt and cap the shipment: the
            // server re-times them against its dispatch start.
            let records: Vec<raven_obs::TraceRecord> = data
                .records
                .into_iter()
                .take(MAX_SHIPPED_SPANS)
                .map(|mut r| {
                    r.start_us = r.start_us.saturating_sub(receipt_us);
                    r
                })
                .collect();
            crate::trace::records_to_json(&records)
        });
        let reply = match computed {
            Ok((mut envelope, certificate)) => {
                let mut certificate = certificate.unwrap_or(Json::Null);
                match chaos_mode {
                    Some(crate::chaos::WorkerChaos::FlipVerdict) => {
                        crate::chaos::byzantine_flip(&mut envelope);
                    }
                    Some(crate::chaos::WorkerChaos::CorruptDuals) => {
                        crate::chaos::byzantine_corrupt_duals(&mut certificate);
                        // Keep the envelope's copy consistent with the
                        // tampered proof, as a competent liar would.
                        if let Json::Obj(fields) = &mut envelope {
                            for (k, v) in fields.iter_mut() {
                                if k == "certificate" {
                                    *v = certificate.clone();
                                }
                            }
                        }
                    }
                    _ => {}
                }
                let mut fields = vec![
                    ("t", Json::from("result")),
                    ("seq", Json::from(seq)),
                    ("envelope", envelope),
                    ("certificate", certificate),
                ];
                if let Some(spans) = spans {
                    fields.push(("spans", spans));
                }
                Json::obj(fields)
            }
            Err(error) => Json::obj([
                ("t", Json::from("error")),
                ("seq", Json::from(seq)),
                ("error", Json::from(error.as_str())),
            ]),
        };
        if matches!(chaos_mode, Some(crate::chaos::WorkerChaos::Disconnect)) {
            // Byzantine mid-frame disconnect: write a torn frame and die.
            let bytes = reply.to_string().into_bytes();
            let mut torn = Vec::new();
            torn.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
            torn.extend_from_slice(&fnv1a64(&bytes).to_le_bytes());
            torn.extend_from_slice(&bytes[..bytes.len() / 2]);
            let _ = conn.stream.write_all(&torn);
            let _ = conn.stream.flush();
            return;
        }
        if conn.write_frame(&reply).is_err() {
            return;
        }
    }
}
