//! LRU result cache.
//!
//! Relational verification is expensive (simplex + branch & bound) and
//! server workloads repeat: the same model is probed at the same ε across
//! deployments, dashboards re-poll, and cross-execution methods re-derive
//! identical sub-queries. The cache memoizes finished *verdicts* (the
//! deterministic JSON objects from `raven::report`) under a key that
//! captures everything the verdict depends on:
//!
//! `(model content hash, property, method, pair strategy, ε bits, batch hash)`
//!
//! ε is keyed by its **bit pattern** (two ε values that differ below
//! display precision are different queries), and the batch hash folds every
//! input coordinate's bit pattern plus the labels, so a cache hit implies
//! the verdict would have been recomputed bit-identically (the verifier is
//! deterministic for any thread count).

use raven::{Method, PairStrategy};
use raven_nn::fnv1a64;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// The full cache key for one verification query.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// `network_fingerprint` of the model.
    pub model_hash: u64,
    /// Property family (`"uap"`, `"monotonicity"`).
    pub property: &'static str,
    /// Verification method.
    pub method: Method,
    /// DiffPoly pair strategy.
    pub pairs: PairStrategy,
    /// Bit pattern of ε.
    pub eps_bits: u64,
    /// Hash of the remaining query payload (inputs, labels, feature, …).
    pub batch_hash: u64,
}

/// Incremental FNV-1a hasher for query payloads.
///
/// Floats are folded by bit pattern, so `0.1 + 0.2` and `0.3` are
/// different payloads — exactly the discrimination the verifier has.
#[derive(Debug)]
pub struct PayloadHasher {
    state: u64,
}

impl Default for PayloadHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl PayloadHasher {
    /// Starts a fresh hash.
    pub fn new() -> Self {
        Self {
            state: fnv1a64(b"raven-serve payload v1"),
        }
    }

    fn push_bytes(&mut self, bytes: &[u8]) {
        // Continue the FNV-1a stream from the current state.
        let mut h = self.state;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.state = h;
    }

    /// Folds one float (by bits).
    pub fn f64(&mut self, x: f64) -> &mut Self {
        self.push_bytes(&x.to_bits().to_le_bytes());
        self
    }

    /// Folds a float slice.
    pub fn f64s(&mut self, xs: &[f64]) -> &mut Self {
        self.usize(xs.len());
        for &x in xs {
            self.f64(x);
        }
        self
    }

    /// Folds one unsigned integer.
    pub fn usize(&mut self, n: usize) -> &mut Self {
        self.push_bytes(&(n as u64).to_le_bytes());
        self
    }

    /// Folds a boolean.
    pub fn bool(&mut self, b: bool) -> &mut Self {
        self.push_bytes(&[b as u8]);
        self
    }

    /// Finishes and returns the hash.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// A cached verdict: the serialized JSON object plus the wall-clock cost
/// of the original run (reported alongside cache hits so clients can see
/// what the hit saved).
#[derive(Debug, Clone, PartialEq)]
pub struct CachedResult {
    /// Serialized verdict object (deterministic).
    pub verdict: String,
    /// Milliseconds the original computation took.
    pub solve_millis: f64,
    /// Per-tier breakdown of the original computation.
    pub tier_millis: raven::TierMillis,
    /// Serialized proof certificate of the original run, when one was
    /// emitted and retained. The server's verdict cache never stores one
    /// (certificate requests bypass cache reads); the *worker-side* cache
    /// keeps it so a retried shard re-emits the identical proof.
    pub certificate: Option<String>,
}

struct Slot {
    value: CachedResult,
    last_used: u64,
}

struct Inner {
    map: HashMap<CacheKey, Slot>,
    tick: u64,
}

/// A thread-safe LRU cache with hit/miss counters.
pub struct ResultCache {
    inner: Mutex<Inner>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ResultCache {
    /// Creates a cache holding at most `capacity` verdicts (0 disables
    /// caching: every lookup misses and nothing is stored).
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                tick: 0,
            }),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Looks up a verdict, updating recency and the hit/miss counters.
    pub fn get(&self, key: &CacheKey) -> Option<CachedResult> {
        let mut inner = self.inner.lock().expect("cache lock");
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(key) {
            Some(slot) => {
                slot.last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                crate::metrics::CACHE_HITS.inc();
                Some(slot.value.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                crate::metrics::CACHE_MISSES.inc();
                None
            }
        }
    }

    /// Inserts a verdict, evicting the least-recently-used entry when at
    /// capacity.
    pub fn put(&self, key: CacheKey, value: CachedResult) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock().expect("cache lock");
        inner.tick += 1;
        let tick = inner.tick;
        if !inner.map.contains_key(&key) && inner.map.len() >= self.capacity {
            if let Some(oldest) = inner
                .map
                .iter()
                .min_by_key(|(_, slot)| slot.last_used)
                .map(|(k, _)| k.clone())
            {
                inner.map.remove(&oldest);
            }
        }
        inner.map.insert(
            key,
            Slot {
                value,
                last_used: tick,
            },
        );
    }

    /// `(hits, misses)` since startup.
    pub fn counters(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Number of cached verdicts.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("cache lock").map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u64) -> CacheKey {
        CacheKey {
            model_hash: 1,
            property: "uap",
            method: Method::Raven,
            pairs: PairStrategy::Consecutive,
            eps_bits: 0.05f64.to_bits(),
            batch_hash: n,
        }
    }

    fn val(s: &str) -> CachedResult {
        CachedResult {
            verdict: s.to_string(),
            solve_millis: 1.0,
            tier_millis: raven::TierMillis::default(),
            certificate: None,
        }
    }

    #[test]
    fn hit_and_miss_counters_track_lookups() {
        let cache = ResultCache::new(4);
        assert!(cache.get(&key(1)).is_none());
        cache.put(key(1), val("a"));
        assert_eq!(cache.get(&key(1)).unwrap().verdict, "a");
        assert_eq!(cache.counters(), (1, 1));
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let cache = ResultCache::new(2);
        cache.put(key(1), val("a"));
        cache.put(key(2), val("b"));
        // Touch 1 so 2 becomes the LRU victim.
        assert!(cache.get(&key(1)).is_some());
        cache.put(key(3), val("c"));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&key(1)).is_some());
        assert!(cache.get(&key(2)).is_none(), "lru entry evicted");
        assert!(cache.get(&key(3)).is_some());
    }

    #[test]
    fn overwriting_a_key_does_not_evict_others() {
        let cache = ResultCache::new(2);
        cache.put(key(1), val("a"));
        cache.put(key(2), val("b"));
        cache.put(key(1), val("a2"));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(&key(1)).unwrap().verdict, "a2");
        assert!(cache.get(&key(2)).is_some());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = ResultCache::new(0);
        cache.put(key(1), val("a"));
        assert!(cache.get(&key(1)).is_none());
        assert!(cache.is_empty());
    }

    #[test]
    fn distinct_key_components_miss() {
        let cache = ResultCache::new(8);
        cache.put(key(1), val("a"));
        let mut k = key(1);
        k.method = Method::IoLp;
        assert!(cache.get(&k).is_none());
        let mut k = key(1);
        k.eps_bits = 0.06f64.to_bits();
        assert!(cache.get(&k).is_none());
        let mut k = key(1);
        k.model_hash = 2;
        assert!(cache.get(&k).is_none());
    }

    #[test]
    fn payload_hasher_discriminates_bitwise() {
        let h = |f: &dyn Fn(&mut PayloadHasher)| {
            let mut p = PayloadHasher::new();
            f(&mut p);
            p.finish()
        };
        let a = h(&|p| {
            p.f64s(&[0.1, 0.2]).usize(1);
        });
        let b = h(&|p| {
            p.f64s(&[0.1, 0.2]).usize(2);
        });
        let c = h(&|p| {
            p.f64s(&[0.1, 0.2 + 1e-16]).usize(1);
        });
        assert_ne!(a, b);
        assert_ne!(a, c);
        // Length prefixes prevent concatenation aliasing.
        let d = h(&|p| {
            p.f64s(&[0.1]).f64s(&[0.2]);
        });
        let e = h(&|p| {
            p.f64s(&[0.1, 0.2]).f64s(&[]);
        });
        assert_ne!(d, e);
    }
}
