//! Fault injection for service chaos tests (test-support).
//!
//! The injection API is always present so callers compile identically with
//! and without chaos, but the injection *bodies* are compiled only under
//! `debug_assertions` (every `cargo test` dev-profile run) or the explicit
//! `chaos` feature; a release build pays nothing.
//!
//! The service fault worth simulating is a **mid-job panic**: a
//! verification that blows up on a worker thread after the job has been
//! accepted. The worker pool must absorb it (`catch_unwind` in
//! `queue::worker_loop`), answer the waiting connection with a 500, and
//! keep the worker alive for the next job. State is process-global —
//! chaos tests that arm a fault must serialize themselves (see
//! `tests/chaos.rs`) and clear it.

#[cfg(any(debug_assertions, feature = "chaos"))]
use std::sync::atomic::{AtomicU64, Ordering};

#[cfg(any(debug_assertions, feature = "chaos"))]
static PANIC_NEXT_JOBS: AtomicU64 = AtomicU64::new(0);

#[cfg(any(debug_assertions, feature = "chaos"))]
static ABORT_NEXT_JOBS: AtomicU64 = AtomicU64::new(0);

#[cfg(any(debug_assertions, feature = "chaos"))]
static TAMPER_NEXT_CERTS: AtomicU64 = AtomicU64::new(0);

/// Byzantine worker behavior (`raven_worker` chaos modes). The enum is
/// always present so fleet code compiles identically; arming only works
/// when the chaos bodies are compiled in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerChaos {
    /// Zero every dual multiplier and Farkas ray in the certificate: the
    /// evidence loosens while the claimed bound stays tight, so exact
    /// replay must reject.
    CorruptDuals,
    /// Flip the envelope's `verified` flag (with superficially consistent
    /// companion fields); the untouched certificate no longer implies the
    /// verdict, so the gate must reject.
    FlipVerdict,
    /// Accept the job and never answer; the server must time out and
    /// retry elsewhere.
    Stall,
    /// Write half a result frame and drop the connection mid-frame.
    Disconnect,
}

#[cfg(any(debug_assertions, feature = "chaos"))]
static WORKER_CHAOS_MODE: AtomicU64 = AtomicU64::new(0);

#[cfg(any(debug_assertions, feature = "chaos"))]
static WORKER_CHAOS_BUDGET: AtomicU64 = AtomicU64::new(0);

/// Makes the next `n` verification jobs panic as they start computing
/// (after queue admission, on the worker thread). No-op in release builds
/// without the `chaos` feature.
pub fn set_panic_next_jobs(n: u64) {
    #[cfg(any(debug_assertions, feature = "chaos"))]
    PANIC_NEXT_JOBS.store(n, Ordering::SeqCst);
    #[cfg(not(any(debug_assertions, feature = "chaos")))]
    let _ = n;
}

/// Makes the next `n` verification jobs **abort the whole process** as
/// they start computing — a real `SIGABRT`, indistinguishable from an
/// OOM-kill to the journal. Only meaningful in a dedicated child process
/// (the durability tests spawn `raven_serve` with this armed via
/// [`arm_from_env`]). No-op in release builds without the `chaos` feature.
pub fn set_abort_next_jobs(n: u64) {
    #[cfg(any(debug_assertions, feature = "chaos"))]
    ABORT_NEXT_JOBS.store(n, Ordering::SeqCst);
    #[cfg(not(any(debug_assertions, feature = "chaos")))]
    let _ = n;
}

/// Makes the next `n` emitted certificates get their claimed bound
/// tampered (tightened beyond the evidence) *before* the in-process spot
/// check sees them — drives the spot-check-failure and
/// `--strict-certificates` paths. No-op in release builds without the
/// `chaos` feature.
pub fn set_tamper_next_certs(n: u64) {
    #[cfg(any(debug_assertions, feature = "chaos"))]
    TAMPER_NEXT_CERTS.store(n, Ordering::SeqCst);
    #[cfg(not(any(debug_assertions, feature = "chaos")))]
    let _ = n;
}

/// Arms a Byzantine worker mode for the next `budget` jobs this process
/// serves as a fleet worker; after the budget is consumed the worker
/// behaves honestly (which is what lets a quarantined worker earn its way
/// back in). No-op in release builds without the `chaos` feature.
pub fn set_worker_chaos(mode: WorkerChaos, budget: u64) {
    #[cfg(any(debug_assertions, feature = "chaos"))]
    {
        let code = match mode {
            WorkerChaos::CorruptDuals => 1,
            WorkerChaos::FlipVerdict => 2,
            WorkerChaos::Stall => 3,
            WorkerChaos::Disconnect => 4,
        };
        WORKER_CHAOS_MODE.store(code, Ordering::SeqCst);
        WORKER_CHAOS_BUDGET.store(budget, Ordering::SeqCst);
    }
    #[cfg(not(any(debug_assertions, feature = "chaos")))]
    let _ = (mode, budget);
}

/// Arms chaos faults from environment variables — the only way a
/// *spawned* process can be given faults. Recognized:
///
/// * `RAVEN_SERVE_CHAOS_ABORT_JOBS=<n>` — abort the process on each of
///   the next `n` job pickups (server).
/// * `RAVEN_SERVE_CHAOS_TAMPER_CERTS=<n>` — tamper the next `n` emitted
///   certificates before the spot check (server).
/// * `RAVEN_WORKER_CHAOS=<mode>[:<n>]` — Byzantine worker mode
///   (`corrupt-duals`, `flip-verdict`, `stall`, `disconnect`) for the
///   next `n` jobs (default: unlimited).
///
/// Call once at binary startup; no-op when the variables are unset or
/// chaos is compiled out.
pub fn arm_from_env() {
    if let Some(n) = std::env::var("RAVEN_SERVE_CHAOS_ABORT_JOBS")
        .ok()
        .and_then(|v| v.parse().ok())
    {
        set_abort_next_jobs(n);
    }
    if let Some(n) = std::env::var("RAVEN_SERVE_CHAOS_TAMPER_CERTS")
        .ok()
        .and_then(|v| v.parse().ok())
    {
        set_tamper_next_certs(n);
    }
    if let Ok(spec) = std::env::var("RAVEN_WORKER_CHAOS") {
        let (mode, budget) = match spec.split_once(':') {
            Some((m, n)) => (m, n.parse().unwrap_or(u64::MAX)),
            None => (spec.as_str(), u64::MAX),
        };
        let mode = match mode {
            "corrupt-duals" => Some(WorkerChaos::CorruptDuals),
            "flip-verdict" => Some(WorkerChaos::FlipVerdict),
            "stall" => Some(WorkerChaos::Stall),
            "disconnect" => Some(WorkerChaos::Disconnect),
            _ => None,
        };
        if let Some(mode) = mode {
            set_worker_chaos(mode, budget);
        }
    }
}

/// Clears all injected service faults.
pub fn clear() {
    set_panic_next_jobs(0);
    set_abort_next_jobs(0);
    set_tamper_next_certs(0);
    #[cfg(any(debug_assertions, feature = "chaos"))]
    {
        WORKER_CHAOS_MODE.store(0, Ordering::SeqCst);
        WORKER_CHAOS_BUDGET.store(0, Ordering::SeqCst);
    }
}

/// Called at the top of every verification job body; panics while a
/// panic budget is armed.
#[inline]
pub(crate) fn job_panic_point() {
    #[cfg(any(debug_assertions, feature = "chaos"))]
    {
        if PANIC_NEXT_JOBS.load(Ordering::Relaxed) > 0 {
            // Decrement-and-check so concurrent jobs consume distinct slots.
            let prev = PANIC_NEXT_JOBS.fetch_sub(1, Ordering::SeqCst);
            if prev > 0 {
                panic!("chaos: injected mid-job panic");
            }
            // Racing underflow: another job consumed the last slot between
            // the load and the sub — restore and carry on.
            PANIC_NEXT_JOBS.fetch_add(1, Ordering::SeqCst);
        }
    }
}

/// Called right after [`job_panic_point`]; aborts the process while an
/// abort budget is armed (simulates a crash with a job mid-flight).
#[inline]
pub(crate) fn job_abort_point() {
    #[cfg(any(debug_assertions, feature = "chaos"))]
    {
        if ABORT_NEXT_JOBS.load(Ordering::Relaxed) > 0 {
            let prev = ABORT_NEXT_JOBS.fetch_sub(1, Ordering::SeqCst);
            if prev > 0 {
                std::process::abort();
            }
            ABORT_NEXT_JOBS.fetch_add(1, Ordering::SeqCst);
        }
    }
}

/// Consumes one certificate-tamper token (see [`set_tamper_next_certs`]).
#[inline]
pub(crate) fn take_cert_tamper() -> bool {
    #[cfg(any(debug_assertions, feature = "chaos"))]
    {
        if TAMPER_NEXT_CERTS.load(Ordering::Relaxed) > 0 {
            let prev = TAMPER_NEXT_CERTS.fetch_sub(1, Ordering::SeqCst);
            if prev > 0 {
                return true;
            }
            TAMPER_NEXT_CERTS.fetch_add(1, Ordering::SeqCst);
        }
    }
    false
}

/// Consumes one Byzantine-worker token, returning the armed mode.
#[inline]
pub(crate) fn take_worker_chaos() -> Option<WorkerChaos> {
    #[cfg(any(debug_assertions, feature = "chaos"))]
    {
        if WORKER_CHAOS_BUDGET.load(Ordering::Relaxed) > 0 {
            let prev = WORKER_CHAOS_BUDGET.fetch_sub(1, Ordering::SeqCst);
            if prev > 0 {
                return match WORKER_CHAOS_MODE.load(Ordering::SeqCst) {
                    1 => Some(WorkerChaos::CorruptDuals),
                    2 => Some(WorkerChaos::FlipVerdict),
                    3 => Some(WorkerChaos::Stall),
                    4 => Some(WorkerChaos::Disconnect),
                    _ => None,
                };
            }
            WORKER_CHAOS_BUDGET.fetch_add(1, Ordering::SeqCst);
        }
    }
    None
}

/// Pushes every recorded relaxation lower line far above its activation
/// (`li += 1e6`), so the exact analysis replay must reject the lines.
/// Used by both tamper paths when the certificate has no LP section —
/// analysis-tier certificates record only relaxation lines.
#[cfg(any(debug_assertions, feature = "chaos"))]
fn corrupt_analysis_lines(cert: &mut raven_json::Json) -> bool {
    use raven_json::Json;
    let mut hit = false;
    let Json::Obj(fields) = cert else {
        return false;
    };
    let Some(Json::Obj(ana)) = fields
        .iter_mut()
        .find(|(k, _)| k == "analysis")
        .map(|(_, v)| v)
    else {
        return false;
    };
    let Some(Json::Arr(neurons)) = ana.iter_mut().find(|(k, _)| k == "neurons").map(|(_, v)| v)
    else {
        return false;
    };
    for neuron in neurons.iter_mut() {
        let Json::Obj(nf) = neuron else { continue };
        for (k, v) in nf.iter_mut() {
            if k == "li" {
                if let Some(li) = v.as_f64() {
                    *v = Json::from(li + 1e6);
                    hit = true;
                }
            }
        }
    }
    hit
}

/// Tampers an emitted certificate so exact replay must reject it: an LP
/// certificate gets its claimed bound tightened *past* the evidence
/// (direction-aware: a Maximize bound shrinks, a Minimize bound grows);
/// an analysis-only certificate gets its relaxation lines pushed past
/// the activation. Drives the spot-check and `--strict-certificates`
/// failure paths without a buggy emitter. No-op without the chaos bodies.
pub(crate) fn tamper_certificate(json: &mut raven_json::Json) {
    #[cfg(any(debug_assertions, feature = "chaos"))]
    {
        use raven_json::Json;
        let Json::Obj(fields) = json else { return };
        let Some(lp) = fields.iter_mut().find(|(k, _)| k == "lp").map(|(_, v)| v) else {
            corrupt_analysis_lines(json);
            return;
        };
        let Json::Obj(lp_fields) = lp else { return };
        let maximize = lp_fields
            .iter()
            .find(|(k, _)| k == "problem")
            .and_then(|(_, p)| p.get("direction"))
            .and_then(Json::as_str)
            == Some("max");
        for (k, v) in lp_fields.iter_mut() {
            if k == "claimed_bound" {
                if let Some(b) = v.as_f64() {
                    *v = Json::from(if maximize { b - 1e6 } else { b + 1e6 });
                }
            }
        }
    }
    #[cfg(not(any(debug_assertions, feature = "chaos")))]
    let _ = json;
}

/// Byzantine flip: forges the envelope's verdict fields (verified flag
/// plus superficially consistent companions) while leaving the
/// certificate untouched — the gate's bound-implication check must catch
/// the mismatch.
pub(crate) fn byzantine_flip(envelope: &mut raven_json::Json) {
    #[cfg(any(debug_assertions, feature = "chaos"))]
    {
        use raven_json::Json;
        let Json::Obj(fields) = envelope else { return };
        let Some(result) = fields
            .iter_mut()
            .find(|(k, _)| k == "result")
            .map(|(_, v)| v)
        else {
            return;
        };
        let Json::Obj(res) = result else { return };
        let was_verified = res
            .iter()
            .find(|(k, _)| k == "verified")
            .and_then(|(_, v)| v.as_bool())
            .unwrap_or(false);
        let k_count = res
            .iter()
            .find(|(k, _)| k == "k")
            .and_then(|(_, v)| v.as_f64())
            .unwrap_or(1.0);
        let now_verified = !was_verified;
        for (key, v) in res.iter_mut() {
            match key.as_str() {
                "verified" => *v = Json::from(now_verified),
                "worst_case_accuracy" => {
                    *v = Json::from(if now_verified { 1.0 } else { 0.0 });
                }
                "worst_case_hamming" => {
                    *v = Json::from(if now_verified { 0.0 } else { k_count });
                }
                "certified_change" => {
                    *v = Json::from(if now_verified { 1.0 } else { -1.0 });
                }
                _ => {}
            }
        }
    }
    #[cfg(not(any(debug_assertions, feature = "chaos")))]
    let _ = envelope;
}

/// Byzantine proof corruption: zeroes every `duals` and `ray` array in
/// the certificate (the claimed bound stays tight while the evidence
/// collapses to the trivial box bound), and pushes analysis relaxation
/// lines past their activations. Either way exact replay must reject.
pub(crate) fn byzantine_corrupt_duals(cert: &mut raven_json::Json) {
    #[cfg(any(debug_assertions, feature = "chaos"))]
    {
        use raven_json::Json;
        fn walk(j: &mut Json, under_proof_key: bool) {
            match j {
                Json::Obj(fields) => {
                    for (k, v) in fields.iter_mut() {
                        walk(v, k == "duals" || k == "ray");
                    }
                }
                Json::Arr(items) => {
                    for v in items.iter_mut() {
                        if under_proof_key {
                            if v.as_f64().is_some() || v.as_str().is_some() {
                                *v = Json::from(0.0);
                            }
                        } else {
                            walk(v, false);
                        }
                    }
                }
                _ => {}
            }
        }
        walk(cert, false);
        corrupt_analysis_lines(cert);
    }
    #[cfg(not(any(debug_assertions, feature = "chaos")))]
    let _ = cert;
}
