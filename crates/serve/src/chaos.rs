//! Fault injection for service chaos tests (test-support).
//!
//! The injection API is always present so callers compile identically with
//! and without chaos, but the injection *bodies* are compiled only under
//! `debug_assertions` (every `cargo test` dev-profile run) or the explicit
//! `chaos` feature; a release build pays nothing.
//!
//! The service fault worth simulating is a **mid-job panic**: a
//! verification that blows up on a worker thread after the job has been
//! accepted. The worker pool must absorb it (`catch_unwind` in
//! `queue::worker_loop`), answer the waiting connection with a 500, and
//! keep the worker alive for the next job. State is process-global —
//! chaos tests that arm a fault must serialize themselves (see
//! `tests/chaos.rs`) and clear it.

#[cfg(any(debug_assertions, feature = "chaos"))]
use std::sync::atomic::{AtomicU64, Ordering};

#[cfg(any(debug_assertions, feature = "chaos"))]
static PANIC_NEXT_JOBS: AtomicU64 = AtomicU64::new(0);

/// Makes the next `n` verification jobs panic as they start computing
/// (after queue admission, on the worker thread). No-op in release builds
/// without the `chaos` feature.
pub fn set_panic_next_jobs(n: u64) {
    #[cfg(any(debug_assertions, feature = "chaos"))]
    PANIC_NEXT_JOBS.store(n, Ordering::SeqCst);
    #[cfg(not(any(debug_assertions, feature = "chaos")))]
    let _ = n;
}

/// Clears all injected service faults.
pub fn clear() {
    set_panic_next_jobs(0);
}

/// Called at the top of every verification job body; panics while a
/// panic budget is armed.
#[inline]
pub(crate) fn job_panic_point() {
    #[cfg(any(debug_assertions, feature = "chaos"))]
    {
        if PANIC_NEXT_JOBS.load(Ordering::Relaxed) > 0 {
            // Decrement-and-check so concurrent jobs consume distinct slots.
            let prev = PANIC_NEXT_JOBS.fetch_sub(1, Ordering::SeqCst);
            if prev > 0 {
                panic!("chaos: injected mid-job panic");
            }
            // Racing underflow: another job consumed the last slot between
            // the load and the sub — restore and carry on.
            PANIC_NEXT_JOBS.fetch_add(1, Ordering::SeqCst);
        }
    }
}
