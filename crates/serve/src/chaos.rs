//! Fault injection for service chaos tests (test-support).
//!
//! The injection API is always present so callers compile identically with
//! and without chaos, but the injection *bodies* are compiled only under
//! `debug_assertions` (every `cargo test` dev-profile run) or the explicit
//! `chaos` feature; a release build pays nothing.
//!
//! The service fault worth simulating is a **mid-job panic**: a
//! verification that blows up on a worker thread after the job has been
//! accepted. The worker pool must absorb it (`catch_unwind` in
//! `queue::worker_loop`), answer the waiting connection with a 500, and
//! keep the worker alive for the next job. State is process-global —
//! chaos tests that arm a fault must serialize themselves (see
//! `tests/chaos.rs`) and clear it.

#[cfg(any(debug_assertions, feature = "chaos"))]
use std::sync::atomic::{AtomicU64, Ordering};

#[cfg(any(debug_assertions, feature = "chaos"))]
static PANIC_NEXT_JOBS: AtomicU64 = AtomicU64::new(0);

#[cfg(any(debug_assertions, feature = "chaos"))]
static ABORT_NEXT_JOBS: AtomicU64 = AtomicU64::new(0);

/// Makes the next `n` verification jobs panic as they start computing
/// (after queue admission, on the worker thread). No-op in release builds
/// without the `chaos` feature.
pub fn set_panic_next_jobs(n: u64) {
    #[cfg(any(debug_assertions, feature = "chaos"))]
    PANIC_NEXT_JOBS.store(n, Ordering::SeqCst);
    #[cfg(not(any(debug_assertions, feature = "chaos")))]
    let _ = n;
}

/// Makes the next `n` verification jobs **abort the whole process** as
/// they start computing — a real `SIGABRT`, indistinguishable from an
/// OOM-kill to the journal. Only meaningful in a dedicated child process
/// (the durability tests spawn `raven_serve` with this armed via
/// [`arm_from_env`]). No-op in release builds without the `chaos` feature.
pub fn set_abort_next_jobs(n: u64) {
    #[cfg(any(debug_assertions, feature = "chaos"))]
    ABORT_NEXT_JOBS.store(n, Ordering::SeqCst);
    #[cfg(not(any(debug_assertions, feature = "chaos")))]
    let _ = n;
}

/// Arms chaos faults from environment variables — the only way a
/// *spawned* server process can be given faults. Recognized:
/// `RAVEN_SERVE_CHAOS_ABORT_JOBS=<n>` (abort the process on each of the
/// next `n` job pickups). Call once at binary startup; no-op when the
/// variables are unset or chaos is compiled out.
pub fn arm_from_env() {
    if let Some(n) = std::env::var("RAVEN_SERVE_CHAOS_ABORT_JOBS")
        .ok()
        .and_then(|v| v.parse().ok())
    {
        set_abort_next_jobs(n);
    }
}

/// Clears all injected service faults.
pub fn clear() {
    set_panic_next_jobs(0);
    set_abort_next_jobs(0);
}

/// Called at the top of every verification job body; panics while a
/// panic budget is armed.
#[inline]
pub(crate) fn job_panic_point() {
    #[cfg(any(debug_assertions, feature = "chaos"))]
    {
        if PANIC_NEXT_JOBS.load(Ordering::Relaxed) > 0 {
            // Decrement-and-check so concurrent jobs consume distinct slots.
            let prev = PANIC_NEXT_JOBS.fetch_sub(1, Ordering::SeqCst);
            if prev > 0 {
                panic!("chaos: injected mid-job panic");
            }
            // Racing underflow: another job consumed the last slot between
            // the load and the sub — restore and carry on.
            PANIC_NEXT_JOBS.fetch_add(1, Ordering::SeqCst);
        }
    }
}

/// Called right after [`job_panic_point`]; aborts the process while an
/// abort budget is armed (simulates a crash with a job mid-flight).
#[inline]
pub(crate) fn job_abort_point() {
    #[cfg(any(debug_assertions, feature = "chaos"))]
    {
        if ABORT_NEXT_JOBS.load(Ordering::Relaxed) > 0 {
            let prev = ABORT_NEXT_JOBS.fetch_sub(1, Ordering::SeqCst);
            if prev > 0 {
                std::process::abort();
            }
            ABORT_NEXT_JOBS.fetch_add(1, Ordering::SeqCst);
        }
    }
}
