//! Service-layer telemetry: queue pressure, latencies, cache efficacy.
//!
//! The queue/cache already keep their own counters for `/v1/healthz`;
//! this module mirrors them into `raven-obs` instruments so one
//! `GET /v1/metrics` scrape covers the whole stack — solver pivots and
//! B&B nodes (`raven_lp_*`), analysis timings (`raven_deeppoly_*`, …),
//! verdict tiers (`raven_core_*`), and the service behavior here
//! (`raven_serve_*`). Everything is observe-only: no metric feeds back
//! into admission, scheduling, or verdicts.

use raven_obs::{Counter, Desc, Gauge, Histogram, MetricRef};

/// Jobs waiting for a worker right now.
pub static QUEUE_DEPTH: Gauge = Gauge::new();
/// Workers currently executing a job.
pub static WORKERS_BUSY: Gauge = Gauge::new();
/// Submissions accepted into the queue.
pub static QUEUE_SUBMITTED: Counter = Counter::new();
/// Submissions rejected with 429 because the queue was full (or draining).
pub static QUEUE_REJECTED: Counter = Counter::new();
/// Seconds a job waited in the queue before a worker picked it up.
pub static WAIT_SECONDS: Histogram = Histogram::new();
/// Seconds a worker spent executing a job (verification + envelope).
pub static SERVICE_SECONDS: Histogram = Histogram::new();
/// Verdict-cache lookups answered from the cache.
pub static CACHE_HITS: Counter = Counter::new();
/// Verdict-cache lookups that missed.
pub static CACHE_MISSES: Counter = Counter::new();

/// Exposition table for the service layer, in stable scrape order.
pub static DESCS: [Desc; 8] = [
    Desc {
        name: "raven_serve_queue_depth",
        help: "Jobs waiting for a worker.",
        labels: "",
        metric: MetricRef::Gauge(&QUEUE_DEPTH),
    },
    Desc {
        name: "raven_serve_workers_busy",
        help: "Workers currently executing a job.",
        labels: "",
        metric: MetricRef::Gauge(&WORKERS_BUSY),
    },
    Desc {
        name: "raven_serve_queue_submitted_total",
        help: "Submissions accepted into the queue.",
        labels: "",
        metric: MetricRef::Counter(&QUEUE_SUBMITTED),
    },
    Desc {
        name: "raven_serve_queue_rejected_total",
        help: "Submissions rejected with 429 (queue full or draining).",
        labels: "",
        metric: MetricRef::Counter(&QUEUE_REJECTED),
    },
    Desc {
        name: "raven_serve_wait_seconds",
        help: "Seconds jobs waited in the queue before execution.",
        labels: "",
        metric: MetricRef::Histogram(&WAIT_SECONDS),
    },
    Desc {
        name: "raven_serve_service_seconds",
        help: "Seconds workers spent executing jobs.",
        labels: "",
        metric: MetricRef::Histogram(&SERVICE_SECONDS),
    },
    Desc {
        name: "raven_serve_cache_hits_total",
        help: "Verdict-cache lookups answered from the cache.",
        labels: "",
        metric: MetricRef::Counter(&CACHE_HITS),
    },
    Desc {
        name: "raven_serve_cache_misses_total",
        help: "Verdict-cache lookups that missed.",
        labels: "",
        metric: MetricRef::Counter(&CACHE_MISSES),
    },
];
