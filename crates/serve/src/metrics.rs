//! Service-layer telemetry: queue pressure, latencies, cache efficacy.
//!
//! The queue/cache already keep their own counters for `/v1/healthz`;
//! this module mirrors them into `raven-obs` instruments so one
//! `GET /v1/metrics` scrape covers the whole stack — solver pivots and
//! B&B nodes (`raven_lp_*`), analysis timings (`raven_deeppoly_*`, …),
//! verdict tiers (`raven_core_*`), and the service behavior here
//! (`raven_serve_*`). Everything is observe-only: no metric feeds back
//! into admission, scheduling, or verdicts.

use raven_obs::{Counter, Desc, Gauge, Histogram, MetricRef};

/// Jobs waiting for a worker right now.
pub static QUEUE_DEPTH: Gauge = Gauge::new();
/// Workers currently executing a job.
pub static WORKERS_BUSY: Gauge = Gauge::new();
/// Submissions accepted into the queue.
pub static QUEUE_SUBMITTED: Counter = Counter::new();
/// Submissions rejected with 429 because the queue was full (or draining).
pub static QUEUE_REJECTED: Counter = Counter::new();
/// Seconds a job waited in the queue before a worker picked it up.
pub static WAIT_SECONDS: Histogram = Histogram::new();
/// Seconds a worker spent executing a job (verification + envelope).
pub static SERVICE_SECONDS: Histogram = Histogram::new();
/// Verdict-cache lookups answered from the cache.
pub static CACHE_HITS: Counter = Counter::new();
/// Verdict-cache lookups that missed.
pub static CACHE_MISSES: Counter = Counter::new();
/// Records appended to the job journal (all record kinds).
pub static JOURNAL_APPENDS: Counter = Counter::new();
/// Journal records decoded during restart replay.
pub static JOURNAL_REPLAYED: Counter = Counter::new();
/// Journal segment compactions performed.
pub static JOURNAL_COMPACTIONS: Counter = Counter::new();
/// Non-terminal jobs re-enqueued by restart recovery.
pub static RECOVERED_JOBS: Counter = Counter::new();
/// Jobs quarantined as poison (crashed the process repeatedly).
pub static QUARANTINED_JOBS: Counter = Counter::new();
/// Wedged jobs cancelled by the watchdog past deadline + grace.
pub static WATCHDOG_KILLS: Counter = Counter::new();
/// Dead worker threads respawned by the watchdog.
pub static WORKER_RESTARTS: Counter = Counter::new();
/// Panicked job attempts re-enqueued for retry.
pub static JOB_RETRIES: Counter = Counter::new();
/// Submissions answered from a previous job via Idempotency-Key.
pub static IDEMPOTENT_HITS: Counter = Counter::new();
/// 1 when the journal replayed a clean-shutdown marker at startup (the
/// fast path: no crash signatures possible), 0 otherwise.
pub static JOURNAL_CLEAN_SHUTDOWN: Gauge = Gauge::new();
/// Serialized size (bytes) of each emitted proof certificate.
pub static CERTIFICATE_BYTES: Histogram = Histogram::new();
/// Milliseconds the exact-arithmetic spot-check replay took per
/// certificate.
pub static REPLAY_MILLIS: Histogram = Histogram::new();
/// Emitted certificates the in-process spot check rejected. Any non-zero
/// value is a solver/emitter bug worth alerting on.
pub static SPOT_CHECK_FAILURES: Counter = Counter::new();
/// Spot-check failures answered by a strict-mode local recompute instead
/// of serving the unverifiable response.
pub static STRICT_RECOMPUTES: Counter = Counter::new();
/// Fleet workers currently connected and not quarantined.
pub static FLEET_WORKERS: Gauge = Gauge::new();
/// Jobs shipped to a fleet worker (one per dispatch attempt).
pub static FLEET_DISPATCHES: Counter = Counter::new();
/// Remote results accepted after their certificate replayed cleanly and
/// the replayed bound implied the claimed verdict.
pub static FLEET_ACCEPTED: Counter = Counter::new();
/// Remote results rejected by the certificate gate (replay failure,
/// spec mismatch, or a bound that does not imply the claimed verdict).
pub static FLEET_REJECTED: Counter = Counter::new();
/// Dispatch attempts that timed out waiting for the worker's reply.
pub static FLEET_TIMEOUTS: Counter = Counter::new();
/// Dispatch attempts that died on a socket error or mid-frame disconnect.
pub static FLEET_DISCONNECTS: Counter = Counter::new();
/// Workers quarantined after repeated certificate rejections.
pub static FLEET_QUARANTINED_WORKERS: Counter = Counter::new();
/// Jobs that exhausted their remote attempts and ran on the local pool.
pub static FLEET_LOCAL_FALLBACKS: Counter = Counter::new();
/// Jobs whose served verdict came from an accepted remote result.
pub static FLEET_REMOTE_SOLVES: Counter = Counter::new();
/// Seconds per dispatch round trip (ship job, receive + gate the reply).
pub static FLEET_DISPATCH_SECONDS: Histogram = Histogram::new();
/// Shard dispatch attempts shipped to fleet workers (one per attempt).
pub static FLEET_SHARD_DISPATCHES: Counter = Counter::new();
/// Shards whose accepted result came from a fleet worker.
pub static FLEET_SHARD_REMOTE: Counter = Counter::new();
/// Shards that exhausted their remote retries and were solved locally.
pub static FLEET_SHARD_FALLBACKS: Counter = Counter::new();
/// Sharded jobs whose per-shard verdicts were merged into one verdict.
pub static FLEET_SHARD_MERGES: Counter = Counter::new();
/// Fleet-eligible jobs kept on the local pool because it was idle
/// (saturation-aware admission declined to dispatch remotely).
pub static FLEET_KEPT_LOCAL: Counter = Counter::new();
/// Traces retained by the tail sampler (slow/degraded/errored/sampled).
pub static TRACES_SAMPLED: Counter = Counter::new();
/// Traces discarded by the tail sampler (boring and below the rate).
pub static TRACES_DROPPED: Counter = Counter::new();
/// Remote worker spans stitched into local traces from result frames.
pub static TRACES_REMOTE_SPANS: Counter = Counter::new();

/// Exposition table for the service layer, in stable scrape order.
pub static DESCS: [Desc; 40] = [
    Desc {
        name: "raven_serve_queue_depth",
        help: "Jobs waiting for a worker.",
        labels: "",
        metric: MetricRef::Gauge(&QUEUE_DEPTH),
    },
    Desc {
        name: "raven_serve_workers_busy",
        help: "Workers currently executing a job.",
        labels: "",
        metric: MetricRef::Gauge(&WORKERS_BUSY),
    },
    Desc {
        name: "raven_serve_queue_submitted_total",
        help: "Submissions accepted into the queue.",
        labels: "",
        metric: MetricRef::Counter(&QUEUE_SUBMITTED),
    },
    Desc {
        name: "raven_serve_queue_rejected_total",
        help: "Submissions rejected with 429 (queue full or draining).",
        labels: "",
        metric: MetricRef::Counter(&QUEUE_REJECTED),
    },
    Desc {
        name: "raven_serve_wait_seconds",
        help: "Seconds jobs waited in the queue before execution.",
        labels: "",
        metric: MetricRef::Histogram(&WAIT_SECONDS),
    },
    Desc {
        name: "raven_serve_service_seconds",
        help: "Seconds workers spent executing jobs.",
        labels: "",
        metric: MetricRef::Histogram(&SERVICE_SECONDS),
    },
    Desc {
        name: "raven_serve_cache_hits_total",
        help: "Verdict-cache lookups answered from the cache.",
        labels: "",
        metric: MetricRef::Counter(&CACHE_HITS),
    },
    Desc {
        name: "raven_serve_cache_misses_total",
        help: "Verdict-cache lookups that missed.",
        labels: "",
        metric: MetricRef::Counter(&CACHE_MISSES),
    },
    Desc {
        name: "raven_serve_journal_appends_total",
        help: "Records appended to the job journal.",
        labels: "",
        metric: MetricRef::Counter(&JOURNAL_APPENDS),
    },
    Desc {
        name: "raven_serve_journal_replayed_total",
        help: "Journal records decoded during restart replay.",
        labels: "",
        metric: MetricRef::Counter(&JOURNAL_REPLAYED),
    },
    Desc {
        name: "raven_serve_journal_compactions_total",
        help: "Journal segment compactions performed.",
        labels: "",
        metric: MetricRef::Counter(&JOURNAL_COMPACTIONS),
    },
    Desc {
        name: "raven_serve_recovered_jobs_total",
        help: "Non-terminal jobs re-enqueued by restart recovery.",
        labels: "",
        metric: MetricRef::Counter(&RECOVERED_JOBS),
    },
    Desc {
        name: "raven_serve_quarantined_jobs_total",
        help: "Jobs quarantined as poison after repeated process crashes.",
        labels: "",
        metric: MetricRef::Counter(&QUARANTINED_JOBS),
    },
    Desc {
        name: "raven_serve_watchdog_kills_total",
        help: "Wedged jobs cancelled by the watchdog past deadline + grace.",
        labels: "",
        metric: MetricRef::Counter(&WATCHDOG_KILLS),
    },
    Desc {
        name: "raven_serve_worker_restarts_total",
        help: "Dead worker threads respawned by the watchdog.",
        labels: "",
        metric: MetricRef::Counter(&WORKER_RESTARTS),
    },
    Desc {
        name: "raven_serve_job_retries_total",
        help: "Panicked job attempts re-enqueued for retry.",
        labels: "",
        metric: MetricRef::Counter(&JOB_RETRIES),
    },
    Desc {
        name: "raven_serve_idempotent_hits_total",
        help: "Submissions answered from a previous job via Idempotency-Key.",
        labels: "",
        metric: MetricRef::Counter(&IDEMPOTENT_HITS),
    },
    Desc {
        name: "raven_serve_journal_clean_shutdown",
        help: "1 when startup replayed a clean-shutdown marker, else 0.",
        labels: "",
        metric: MetricRef::Gauge(&JOURNAL_CLEAN_SHUTDOWN),
    },
    Desc {
        name: "raven_check_certificate_bytes",
        help: "Serialized size in bytes of each emitted proof certificate.",
        labels: "",
        metric: MetricRef::Histogram(&CERTIFICATE_BYTES),
    },
    Desc {
        name: "raven_check_replay_millis",
        help: "Milliseconds per exact-arithmetic certificate spot check.",
        labels: "",
        metric: MetricRef::Histogram(&REPLAY_MILLIS),
    },
    Desc {
        name: "raven_serve_spot_check_failures_total",
        help: "Emitted certificates rejected by the in-process spot check.",
        labels: "",
        metric: MetricRef::Counter(&SPOT_CHECK_FAILURES),
    },
    Desc {
        name: "raven_serve_strict_recomputes_total",
        help: "Spot-check failures answered by a strict-mode recompute.",
        labels: "",
        metric: MetricRef::Counter(&STRICT_RECOMPUTES),
    },
    Desc {
        name: "raven_serve_fleet_workers",
        help: "Fleet workers currently connected and not quarantined.",
        labels: "",
        metric: MetricRef::Gauge(&FLEET_WORKERS),
    },
    Desc {
        name: "raven_serve_fleet_dispatches_total",
        help: "Jobs shipped to a fleet worker (one per dispatch attempt).",
        labels: "",
        metric: MetricRef::Counter(&FLEET_DISPATCHES),
    },
    Desc {
        name: "raven_serve_fleet_accepted_total",
        help: "Remote results accepted after certificate replay.",
        labels: "",
        metric: MetricRef::Counter(&FLEET_ACCEPTED),
    },
    Desc {
        name: "raven_serve_fleet_rejected_total",
        help: "Remote results rejected by the certificate gate.",
        labels: "",
        metric: MetricRef::Counter(&FLEET_REJECTED),
    },
    Desc {
        name: "raven_serve_fleet_timeouts_total",
        help: "Dispatch attempts that timed out awaiting the reply.",
        labels: "",
        metric: MetricRef::Counter(&FLEET_TIMEOUTS),
    },
    Desc {
        name: "raven_serve_fleet_disconnects_total",
        help: "Dispatch attempts lost to socket errors or disconnects.",
        labels: "",
        metric: MetricRef::Counter(&FLEET_DISCONNECTS),
    },
    Desc {
        name: "raven_serve_fleet_quarantined_workers_total",
        help: "Workers quarantined after repeated certificate rejections.",
        labels: "",
        metric: MetricRef::Counter(&FLEET_QUARANTINED_WORKERS),
    },
    Desc {
        name: "raven_serve_fleet_local_fallbacks_total",
        help: "Jobs that exhausted remote attempts and ran locally.",
        labels: "",
        metric: MetricRef::Counter(&FLEET_LOCAL_FALLBACKS),
    },
    Desc {
        name: "raven_serve_fleet_remote_solves_total",
        help: "Jobs whose served verdict came from an accepted remote result.",
        labels: "",
        metric: MetricRef::Counter(&FLEET_REMOTE_SOLVES),
    },
    Desc {
        name: "raven_serve_fleet_dispatch_seconds",
        help: "Seconds per fleet dispatch round trip.",
        labels: "",
        metric: MetricRef::Histogram(&FLEET_DISPATCH_SECONDS),
    },
    Desc {
        name: "raven_serve_fleet_shard_dispatches_total",
        help: "Shard dispatch attempts shipped to fleet workers.",
        labels: "",
        metric: MetricRef::Counter(&FLEET_SHARD_DISPATCHES),
    },
    Desc {
        name: "raven_serve_fleet_shard_remote_total",
        help: "Shards whose accepted result came from a fleet worker.",
        labels: "",
        metric: MetricRef::Counter(&FLEET_SHARD_REMOTE),
    },
    Desc {
        name: "raven_serve_fleet_shard_fallbacks_total",
        help: "Shards that exhausted remote retries and ran locally.",
        labels: "",
        metric: MetricRef::Counter(&FLEET_SHARD_FALLBACKS),
    },
    Desc {
        name: "raven_serve_fleet_shard_merges_total",
        help: "Sharded jobs merged into one verdict from per-shard results.",
        labels: "",
        metric: MetricRef::Counter(&FLEET_SHARD_MERGES),
    },
    Desc {
        name: "raven_serve_fleet_kept_local_total",
        help: "Fleet-eligible jobs kept local because the pool was idle.",
        labels: "",
        metric: MetricRef::Counter(&FLEET_KEPT_LOCAL),
    },
    Desc {
        name: "raven_serve_traces_total",
        help: "Tail-sampler decisions on finished request traces.",
        labels: r#"decision="sampled""#,
        metric: MetricRef::Counter(&TRACES_SAMPLED),
    },
    Desc {
        name: "raven_serve_traces_total",
        help: "Tail-sampler decisions on finished request traces.",
        labels: r#"decision="dropped""#,
        metric: MetricRef::Counter(&TRACES_DROPPED),
    },
    Desc {
        name: "raven_serve_traces_remote_spans_total",
        help: "Remote worker spans stitched into local traces.",
        labels: "",
        metric: MetricRef::Counter(&TRACES_REMOTE_SPANS),
    },
];
