//! Observability primitives for the RaVeN verifier stack.
//!
//! Every crate in the workspace funnels its telemetry through this one:
//! `raven-lp` counts simplex pivots and branch-&-bound nodes, the analysis
//! crates time their layer sweeps, `raven` (core) tracks which anytime tier
//! each property reached, and `raven-serve` measures queue wait and service
//! time. The primitives are deliberately tiny and std-only:
//!
//! * [`Counter`] — a saturating (never wrapping) atomic `u64`;
//! * [`Gauge`] — an atomic `i64` for levels (queue depth, busy workers);
//! * [`Histogram`] — fixed log₂-scaled buckets covering `(0, 2^21]` with an
//!   underflow bucket (which absorbs `0`, negatives, and subnormals) and a
//!   `+inf` bucket, plus an atomically-accumulated sum;
//! * [`SpanGuard`]/[`span`] — hierarchical monotonic-clock spans emitted as
//!   JSONL events to a process-wide [sink](set_sink_path);
//! * [`Timer`] — a drop-guard that records elapsed seconds into a histogram;
//! * [`TraceCtx`]/[`begin_trace`] — request-scoped distributed tracing:
//!   a 128-bit trace id carried explicitly across threads (and fleet
//!   processes), per-trace ring buffers, and a [`TailSampler`] that keeps
//!   slow/degraded/errored traces and samples the rest;
//! * [`render_prometheus`] — the Prometheus text exposition renderer over
//!   static [`Desc`] tables.
//!
//! # Determinism contract
//!
//! Metrics are **observe-only**: nothing in this crate feeds back into any
//! computation, so enabling or disabling telemetry can never change a
//! verdict byte (`tests/parallel_determinism.rs` in the workspace root pins
//! this). Counters and gauges are always live — an uncontended relaxed
//! atomic increment is a few nanoseconds and not worth a branch. Anything
//! that reads the clock (spans, [`Timer`]) is gated behind the process-wide
//! [`set_enabled`] switch and costs one relaxed load when disabled.
//!
//! # Examples
//!
//! ```
//! use raven_obs::{Counter, Histogram};
//!
//! static PIVOTS: Counter = Counter::new();
//! static SOLVE_SECONDS: Histogram = Histogram::new();
//!
//! PIVOTS.inc();
//! SOLVE_SECONDS.observe(0.003);
//! assert_eq!(PIVOTS.get(), 1);
//! assert_eq!(SOLVE_SECONDS.count(), 1);
//! ```

mod metric;
mod render;
mod span;
mod trace;

pub use metric::{Counter, Gauge, Histogram, HistogramSnapshot, BUCKET_COUNT};
pub use render::{render_prometheus, Desc, MetricRef};
pub use span::{
    clear_sink, enabled, event, reset_thread_spans, set_enabled, set_sink_path, set_sink_writer,
    sink_active, span, timed_span, SpanGuard, Timer,
};
pub use trace::{
    begin_trace, current_trace, discard_trace, end_trace, format_traceparent, mint_trace_id,
    next_span_id, now_us, parse_traceparent, propagate_trace, record_into, set_current_trace,
    KeepReason, TailSampler, TraceCtx, TraceData, TraceOutcome, TraceRecord, TraceScope,
    TRACE_BUFFER_CAP,
};
