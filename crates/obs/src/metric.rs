//! Atomic counters, gauges, and log-scaled histograms.
//!
//! All three types are `const`-constructible so instruments can live in
//! `static`s next to the code they measure — no registration step, no
//! locks, no allocation. Updates use relaxed atomics: telemetry needs no
//! ordering guarantees with respect to the computation it observes, and a
//! relaxed RMW is the cheapest thing the hardware offers.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A monotone event counter that **saturates** at `u64::MAX`.
///
/// Wrapping would make a counter jump from `u64::MAX` back to a small
/// number, which scrape-side `rate()` math would read as a reset; pinning
/// at the maximum is the least-surprising overflow behaviour for telemetry
/// that can never legitimately reach 2⁶⁴ events.
#[derive(Debug)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A fresh zero counter, usable in `static` position.
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`, saturating at `u64::MAX`.
    #[inline]
    pub fn add(&self, n: u64) {
        // fetch_update loops only under contention; uncontended it is a
        // single CAS, the same cost class as fetch_add.
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_add(n))
            });
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Resets to zero (tests and per-run CLI deltas).
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

impl Default for Counter {
    fn default() -> Self {
        Self::new()
    }
}

/// A signed level that can go up and down (queue depth, busy workers).
#[derive(Debug)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A fresh zero gauge, usable in `static` position.
    pub const fn new() -> Self {
        Self(AtomicI64::new(0))
    }

    /// Sets the level.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative via [`Gauge::sub`]).
    #[inline]
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`.
    #[inline]
    pub fn sub(&self, n: i64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current level.
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl Default for Gauge {
    fn default() -> Self {
        Self::new()
    }
}

/// Smallest finite bucket exponent: the first bucket is `(−∞, 2^MIN_EXP]`
/// and absorbs zero, negatives, and every subnormal (≈ 1 µs when the
/// observed unit is seconds).
pub(crate) const MIN_EXP: i32 = -20;
/// Largest finite bucket exponent: `2^21 ≈ 2.1e6` (≈ 24 days in seconds,
/// or two million pivots when the unit is a count).
pub(crate) const MAX_EXP: i32 = 21;
/// Total buckets: one per exponent in `MIN_EXP..=MAX_EXP` plus `+inf`.
pub const BUCKET_COUNT: usize = (MAX_EXP - MIN_EXP + 1) as usize + 1;

/// A fixed-layout histogram with log₂-scaled buckets.
///
/// Bucket `i < BUCKET_COUNT − 1` counts observations in
/// `(2^(MIN_EXP+i−1), 2^(MIN_EXP+i)]` (the first bucket's lower edge is
/// −∞), and the last bucket counts everything larger, including `+inf`.
/// One layout for every instrument keeps the renderer trivial and the
/// exposition deterministic.
///
/// Edge cases, audited like the interval arithmetic this repo is built on:
/// `0`, negatives, and subnormals land in the underflow bucket; `+inf`
/// lands in the overflow bucket (and drives the sum to `+inf`, which
/// Prometheus accepts); `NaN` observations are dropped entirely — a NaN
/// would poison the sum and belongs in no ordered bucket. Nothing panics.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKET_COUNT],
    /// Σ of observed values, stored as f64 bits and CAS-accumulated.
    sum_bits: AtomicU64,
    count: AtomicU64,
}

/// A coherent-enough point-in-time copy of a histogram (buckets, sum,
/// count are read independently; under concurrent writers the snapshot may
/// straddle an observation, which scraping tolerates by design).
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Per-bucket counts, same layout as the histogram.
    pub buckets: [u64; BUCKET_COUNT],
    /// Sum of observed values.
    pub sum: f64,
    /// Number of observations.
    pub count: u64,
}

/// Upper bound of bucket `i` (`f64::INFINITY` for the last). Powers of two
/// in `[-20, 21]` are exact in f64, so `powi` introduces no rounding.
pub(crate) fn bucket_bound(i: usize) -> f64 {
    if i + 1 >= BUCKET_COUNT {
        f64::INFINITY
    } else {
        2.0f64.powi(MIN_EXP + i as i32)
    }
}

/// Maps an observation to its bucket index; `None` drops the observation.
fn bucket_index(v: f64) -> Option<usize> {
    if v.is_nan() {
        return None;
    }
    if v <= bucket_bound(0) {
        // Zero, negatives, subnormals, and anything up to 2^MIN_EXP.
        return Some(0);
    }
    if !v.is_finite() || v > bucket_bound(BUCKET_COUNT - 2) {
        return Some(BUCKET_COUNT - 1);
    }
    // v is finite and in (2^MIN_EXP, 2^MAX_EXP]: ceil(log2 v) picks the
    // smallest exponent e with v <= 2^e. log2 of a normal positive f64 is
    // exact enough that the clamp only guards pathological rounding.
    let e = v.log2().ceil() as i32;
    let idx = (e - MIN_EXP).clamp(0, (BUCKET_COUNT - 2) as i32);
    Some(idx as usize)
}

impl Histogram {
    /// A fresh empty histogram, usable in `static` position.
    pub const fn new() -> Self {
        Self {
            buckets: [const { AtomicU64::new(0) }; BUCKET_COUNT],
            sum_bits: AtomicU64::new(0.0f64.to_bits()),
            count: AtomicU64::new(0),
        }
    }

    /// Records one observation (unit chosen by the instrument: seconds for
    /// durations, plain counts for sizes).
    pub fn observe(&self, v: f64) {
        let Some(idx) = bucket_index(v) else {
            return; // NaN: dropped, see type-level docs.
        };
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // CAS-accumulate the f64 sum. +inf saturates naturally.
        let _ = self
            .sum_bits
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                Some((f64::from_bits(bits) + v).to_bits())
            });
    }

    /// Records a [`std::time::Duration`] in seconds.
    pub fn observe_duration(&self, d: std::time::Duration) {
        self.observe(d.as_secs_f64());
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observed values.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Copies out buckets, sum, and count.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKET_COUNT];
        for (out, b) in buckets.iter_mut().zip(&self.buckets) {
            *out = b.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            sum: self.sum(),
            count: self.count(),
        }
    }

    /// Resets all buckets, the sum, and the count to zero.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.sum_bits.store(0.0f64.to_bits(), Ordering::Relaxed);
        self.count.store(0, Ordering::Relaxed);
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_saturates_instead_of_wrapping() {
        let c = Counter::new();
        c.add(u64::MAX - 3);
        c.add(10);
        assert_eq!(c.get(), u64::MAX);
        c.inc();
        assert_eq!(c.get(), u64::MAX);
        c.add(u64::MAX);
        assert_eq!(c.get(), u64::MAX);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::new();
        g.add(5);
        g.sub(7);
        assert_eq!(g.get(), -2);
        g.set(42);
        assert_eq!(g.get(), 42);
    }

    #[test]
    fn histogram_buckets_zero_without_panicking() {
        let h = Histogram::new();
        h.observe(0.0);
        h.observe(-0.0);
        h.observe(-1.5);
        let s = h.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.buckets[0], 3);
        assert_eq!(s.sum, -1.5);
    }

    #[test]
    fn histogram_buckets_subnormals_in_underflow() {
        let h = Histogram::new();
        h.observe(f64::MIN_POSITIVE / 2.0); // subnormal
        h.observe(5e-324); // smallest positive subnormal
        let s = h.snapshot();
        assert_eq!(s.count, 2);
        assert_eq!(s.buckets[0], 2);
        assert!(s.sum > 0.0 && s.sum.is_finite());
    }

    #[test]
    fn histogram_buckets_infinity_in_overflow() {
        let h = Histogram::new();
        h.observe(f64::INFINITY);
        h.observe(1e300);
        let s = h.snapshot();
        assert_eq!(s.count, 2);
        assert_eq!(s.buckets[BUCKET_COUNT - 1], 2);
        assert_eq!(s.sum, f64::INFINITY);
    }

    #[test]
    fn histogram_drops_nan() {
        let h = Histogram::new();
        h.observe(f64::NAN);
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0.0);
    }

    #[test]
    fn histogram_le_semantics_on_exact_powers_of_two() {
        let h = Histogram::new();
        // 1.0 == 2^0 must land in the bucket whose upper bound is 2^0.
        h.observe(1.0);
        let idx = (0 - MIN_EXP) as usize;
        assert_eq!(h.snapshot().buckets[idx], 1);
        // Just above 2^0 goes one bucket up.
        h.observe(1.0 + f64::EPSILON);
        assert_eq!(h.snapshot().buckets[idx + 1], 1);
    }

    #[test]
    fn histogram_covers_full_finite_range() {
        let h = Histogram::new();
        h.observe(1e-9); // below 2^-20 -> underflow
        h.observe(3.0e6); // above 2^21 -> overflow
        h.observe(0.001); // 2^-10 region
        let s = h.snapshot();
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[BUCKET_COUNT - 1], 1);
        assert_eq!(s.count, 3);
    }

    #[test]
    fn bucket_bounds_are_monotone() {
        for i in 1..BUCKET_COUNT {
            assert!(bucket_bound(i) > bucket_bound(i - 1));
        }
        assert!(bucket_bound(BUCKET_COUNT - 1).is_infinite());
    }

    #[test]
    fn reset_clears_everything() {
        let h = Histogram::new();
        h.observe(1.0);
        h.reset();
        let s = h.snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.sum, 0.0);
        assert!(s.buckets.iter().all(|&b| b == 0));
    }
}
