//! Prometheus text exposition (format version 0.0.4).
//!
//! Instruments live in per-crate `static` tables of [`Desc`] entries; the
//! renderer walks those tables and prints `# HELP` / `# TYPE` headers plus
//! sample lines. Labelled families (e.g. one counter per anytime tier)
//! are expressed as adjacent `Desc` entries sharing a `name` with distinct
//! static `labels` strings — the header is emitted once per name, which is
//! why same-name entries must be adjacent in their table.
//!
//! Output ordering follows table order exactly, so a scrape is a
//! deterministic function of the metric values.

use crate::metric::{bucket_bound, Counter, Gauge, Histogram};
use std::fmt::Write as _;

/// A borrowed reference to one instrument.
#[derive(Clone, Copy)]
pub enum MetricRef {
    /// Monotone counter (rendered as `counter`).
    Counter(&'static Counter),
    /// Up/down level (rendered as `gauge`).
    Gauge(&'static Gauge),
    /// Log₂-bucketed histogram (rendered as `histogram`).
    Histogram(&'static Histogram),
}

/// One exposition entry: a metric name, its help text, an optional static
/// label set (`r#"tier="milp""#` style, no braces), and the instrument.
#[derive(Clone, Copy)]
pub struct Desc {
    /// Full metric name, `raven_<crate>_<name>[_<unit>]` by convention.
    pub name: &'static str,
    /// One-line help text.
    pub help: &'static str,
    /// Static labels without braces, e.g. `tier="milp"`; empty for none.
    pub labels: &'static str,
    /// The instrument itself.
    pub metric: MetricRef,
}

impl MetricRef {
    fn type_name(&self) -> &'static str {
        match self {
            MetricRef::Counter(_) => "counter",
            MetricRef::Gauge(_) => "gauge",
            MetricRef::Histogram(_) => "histogram",
        }
    }
}

/// Formats a sample value. Prometheus parses integers and floats alike;
/// `{}` on f64 is shortest-roundtrip, and ±inf must be spelled `+Inf`/`-Inf`.
fn fmt_value(v: f64) -> String {
    if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

fn write_labelled(out: &mut String, name: &str, labels: &str, extra: &str, value: &str) {
    out.push_str(name);
    if !labels.is_empty() || !extra.is_empty() {
        out.push('{');
        out.push_str(labels);
        if !labels.is_empty() && !extra.is_empty() {
            out.push(',');
        }
        out.push_str(extra);
        out.push('}');
    }
    out.push(' ');
    out.push_str(value);
    out.push('\n');
}

/// Renders every table into one exposition document.
///
/// Tables are typically `&raven_lp::metrics::DESCS` and friends; passing
/// them as a slice-of-slices lets `raven-serve` and the CLI assemble the
/// same document from whatever crates they link.
pub fn render_prometheus(tables: &[&[Desc]]) -> String {
    let mut out = String::new();
    let mut last_name = "";
    for desc in tables.iter().flat_map(|t| t.iter()) {
        if desc.name != last_name {
            let _ = writeln!(out, "# HELP {} {}", desc.name, desc.help);
            let _ = writeln!(out, "# TYPE {} {}", desc.name, desc.metric.type_name());
            last_name = desc.name;
        }
        match desc.metric {
            MetricRef::Counter(c) => {
                write_labelled(&mut out, desc.name, desc.labels, "", &c.get().to_string());
            }
            MetricRef::Gauge(g) => {
                write_labelled(&mut out, desc.name, desc.labels, "", &g.get().to_string());
            }
            MetricRef::Histogram(h) => {
                let snap = h.snapshot();
                let mut cumulative = 0u64;
                for (i, &n) in snap.buckets.iter().enumerate() {
                    cumulative = cumulative.saturating_add(n);
                    let le = format!("le=\"{}\"", fmt_value(bucket_bound(i)));
                    write_labelled(
                        &mut out,
                        &format!("{}_bucket", desc.name),
                        desc.labels,
                        &le,
                        &cumulative.to_string(),
                    );
                }
                write_labelled(
                    &mut out,
                    &format!("{}_sum", desc.name),
                    desc.labels,
                    "",
                    &fmt_value(snap.sum),
                );
                write_labelled(
                    &mut out,
                    &format!("{}_count", desc.name),
                    desc.labels,
                    "",
                    &snap.count.to_string(),
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::BUCKET_COUNT;

    static C: Counter = Counter::new();
    static G: Gauge = Gauge::new();
    static H: Histogram = Histogram::new();

    /// Serializes tests that reset the shared static instruments.
    fn global_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn table() -> [Desc; 4] {
        [
            Desc {
                name: "raven_test_events_total",
                help: "Test events.",
                labels: "",
                metric: MetricRef::Counter(&C),
            },
            Desc {
                name: "raven_test_tier_total",
                help: "Labelled family.",
                labels: r#"tier="milp""#,
                metric: MetricRef::Counter(&C),
            },
            Desc {
                name: "raven_test_depth",
                help: "A gauge.",
                labels: "",
                metric: MetricRef::Gauge(&G),
            },
            Desc {
                name: "raven_test_seconds",
                help: "A histogram.",
                labels: "",
                metric: MetricRef::Histogram(&H),
            },
        ]
    }

    #[test]
    fn renders_valid_exposition_lines() {
        let _g = global_lock();
        C.reset();
        H.reset();
        C.add(3);
        G.set(-2);
        H.observe(0.5);
        H.observe(f64::INFINITY);
        let text = render_prometheus(&[&table()]);

        assert!(text.contains("# HELP raven_test_events_total Test events.\n"));
        assert!(text.contains("# TYPE raven_test_events_total counter\n"));
        assert!(text.contains("raven_test_events_total 3\n"));
        assert!(text.contains("raven_test_tier_total{tier=\"milp\"} 3\n"));
        assert!(text.contains("raven_test_depth -2\n"));
        assert!(text.contains("# TYPE raven_test_seconds histogram\n"));
        assert!(text.contains("raven_test_seconds_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("raven_test_seconds_sum +Inf\n"));
        assert!(text.contains("raven_test_seconds_count 2\n"));
        // Every non-comment line is `name[{labels}] value`.
        for line in text.lines() {
            if line.starts_with('#') {
                continue;
            }
            let (name, value) = line.rsplit_once(' ').expect("sample line");
            assert!(!name.is_empty());
            assert!(value == "+Inf" || value == "-Inf" || value.parse::<f64>().is_ok());
        }
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_end_at_count() {
        let _g = global_lock();
        H.reset();
        for v in [0.0, 1.0, 2.0, 1e9] {
            H.observe(v);
        }
        let text = render_prometheus(&[&table()]);
        let mut last = 0u64;
        let mut inf_cum = None;
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("raven_test_seconds_bucket{le=\"") {
                let (_, v) = rest.rsplit_once(' ').unwrap();
                let cum: u64 = v.parse().unwrap();
                assert!(cum >= last, "buckets must be cumulative");
                last = cum;
                if rest.starts_with("+Inf") {
                    inf_cum = Some(cum);
                }
            }
        }
        assert_eq!(inf_cum, Some(H.count()));
        assert_eq!(BUCKET_COUNT, 43);
    }

    #[test]
    fn help_and_type_emitted_once_per_family() {
        let text = render_prometheus(&[&table()]);
        let helps = text
            .lines()
            .filter(|l| l.starts_with("# HELP raven_test_events_total"))
            .count();
        assert_eq!(helps, 1);
    }
}
