//! Request-scoped distributed tracing: trace context, per-trace buffers,
//! and the tail-sampling policy.
//!
//! A [`TraceCtx`] names one end-to-end request: a 128-bit trace id (wire
//! format: a W3C `traceparent`-style header) plus the span id that should
//! parent any thread-root span opened while the context is installed. The
//! context is **carried explicitly**: nothing flows between threads unless
//! someone calls [`set_current_trace`] (or holds a [`TraceScope`]) on the
//! receiving thread — `raven-serve` does this at job boundaries, `raven`'s
//! parallel map does it for its scoped workers, and a fleet worker does it
//! per remote job.
//!
//! While a context is current, every span and event that closes on the
//! thread is additionally recorded into a bounded per-trace ring buffer
//! (capacity [`TRACE_BUFFER_CAP`]; the oldest records are dropped and
//! counted). The buffer is keyed by an opaque collection key minted by
//! [`begin_trace`], *not* by the trace id — so a server and an in-process
//! fleet worker can buffer the same trace id concurrently without stealing
//! each other's records.
//!
//! Collection is unconditional while a context is current; *retention* is
//! decided at the end of the request by a [`TailSampler`]: traces that were
//! slow, degraded, errored, retried, or certificate-rejected are always
//! kept, the rest are sampled by a deterministic hash of the trace id.
//!
//! Everything here is observe-only (see the crate-level determinism
//! contract): trace buffers are write-only from the solver's perspective
//! and can never feed back into a verdict.

use std::cell::Cell;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

/// Maximum records buffered per trace; older records are dropped (counted).
pub const TRACE_BUFFER_CAP: usize = 4096;
/// Maximum concurrently-collecting traces; beyond this, [`begin_trace`]
/// returns an unbuffered context rather than growing without bound.
const MAX_LIVE_TRACES: usize = 1024;

/// The identity of one end-to-end request, carried explicitly across
/// threads and processes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceCtx {
    /// 128-bit trace id (nonzero), shared by every process that touches
    /// the request.
    pub trace_id: u128,
    /// Span id that parents any span whose thread-local stack is empty
    /// while this context is current — the request's root (or, on a fleet
    /// worker, the server's dispatch span).
    pub parent_span: u64,
    /// Collection-buffer key minted by [`begin_trace`]; `0` = unbuffered.
    key: u64,
}

impl TraceCtx {
    /// Renders the context as a `traceparent` header value.
    pub fn traceparent(&self) -> String {
        format_traceparent(self.trace_id, self.parent_span)
    }
}

/// One buffered span or event, as captured into a per-trace ring buffer.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceRecord {
    /// `"span"` or `"event"`.
    pub kind: &'static str,
    pub name: String,
    /// Span id (`0` for events).
    pub id: u64,
    /// Parent span id (`0` = trace root).
    pub parent: u64,
    /// Thread label; stitched remote records are prefixed `worker/`.
    pub thread: String,
    /// Microseconds since the recording process's telemetry epoch (remote
    /// records are rebased onto the dispatch span at stitch time).
    pub start_us: u64,
    /// Duration in microseconds (`0` for events).
    pub dur_us: u64,
    /// Whether the record was shipped home from a fleet worker.
    pub remote: bool,
    /// Extra key/value fields (events only).
    pub fields: Vec<(String, String)>,
}

/// The drained contents of one trace's ring buffer.
#[derive(Clone, Debug, Default)]
pub struct TraceData {
    pub records: Vec<TraceRecord>,
    /// Records lost to the ring-buffer cap.
    pub dropped: u64,
}

struct TraceBuf {
    records: VecDeque<TraceRecord>,
    dropped: u64,
}

fn buffers() -> &'static Mutex<HashMap<u64, TraceBuf>> {
    static BUFFERS: OnceLock<Mutex<HashMap<u64, TraceBuf>>> = OnceLock::new();
    BUFFERS.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Collection keys; 0 is reserved for "unbuffered".
static NEXT_KEY: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// The trace context installed on this thread, if any.
    static CURRENT: Cell<Option<TraceCtx>> = const { Cell::new(None) };
}

/// Allocates a ring buffer for a trace and returns the context to install.
///
/// If [`MAX_LIVE_TRACES`] collections are already live the context comes
/// back unbuffered (spans still tag JSONL lines, nothing is retained).
pub fn begin_trace(trace_id: u128, parent_span: u64) -> TraceCtx {
    let mut map = buffers().lock().unwrap_or_else(|e| e.into_inner());
    let key = if map.len() >= MAX_LIVE_TRACES {
        0
    } else {
        let key = NEXT_KEY.fetch_add(1, Ordering::Relaxed);
        map.insert(
            key,
            TraceBuf {
                records: VecDeque::new(),
                dropped: 0,
            },
        );
        key
    };
    TraceCtx {
        trace_id,
        parent_span,
        key,
    }
}

/// Removes and returns everything buffered for `ctx`.
pub fn end_trace(ctx: TraceCtx) -> TraceData {
    let mut map = buffers().lock().unwrap_or_else(|e| e.into_inner());
    match map.remove(&ctx.key) {
        Some(buf) => TraceData {
            records: buf.records.into(),
            dropped: buf.dropped,
        },
        None => TraceData::default(),
    }
}

/// Drops a trace's buffer without reading it. Idempotent — safe to call
/// as a cleanup backstop after [`end_trace`] may already have run.
pub fn discard_trace(ctx: TraceCtx) {
    let mut map = buffers().lock().unwrap_or_else(|e| e.into_inner());
    map.remove(&ctx.key);
}

/// Installs (or clears) the trace context on the calling thread.
pub fn set_current_trace(ctx: Option<TraceCtx>) {
    CURRENT.with(|c| c.set(ctx));
}

/// The trace context installed on the calling thread, if any.
#[inline]
pub fn current_trace() -> Option<TraceCtx> {
    CURRENT.with(|c| c.get())
}

/// RAII guard from [`propagate_trace`]: restores the previous context on
/// drop, so nesting is safe.
#[must_use = "dropping the scope immediately uninstalls the trace"]
pub struct TraceScope {
    prev: Option<TraceCtx>,
}

/// Installs `ctx` on the calling thread for the lifetime of the returned
/// guard — the explicit cross-thread handoff used by `raven`'s parallel
/// workers and the verify entry points.
pub fn propagate_trace(ctx: Option<TraceCtx>) -> TraceScope {
    let prev = current_trace();
    set_current_trace(ctx);
    TraceScope { prev }
}

impl Drop for TraceScope {
    fn drop(&mut self) {
        set_current_trace(self.prev);
    }
}

/// Appends `record` to the buffer of `ctx` (ring-buffer semantics). Used
/// both internally on span close and by `raven-serve` to stitch records
/// shipped home from a fleet worker.
pub fn record_into(ctx: TraceCtx, record: TraceRecord) {
    if ctx.key == 0 {
        return;
    }
    let mut map = buffers().lock().unwrap_or_else(|e| e.into_inner());
    if let Some(buf) = map.get_mut(&ctx.key) {
        if buf.records.len() >= TRACE_BUFFER_CAP {
            buf.records.pop_front();
            buf.dropped += 1;
        }
        buf.records.push_back(record);
    }
}

/// Mints a fresh span id from the process-wide sequence — used to give
/// stitched remote spans ids that cannot collide with local ones.
pub fn next_span_id() -> u64 {
    crate::span::mint_span_id()
}

/// Microseconds since the process telemetry epoch (the span timebase).
pub fn now_us() -> u64 {
    crate::span::epoch_elapsed_us()
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Mints a fresh, nonzero 128-bit trace id (wall clock + sequence, mixed).
pub fn mint_trace_id() -> u128 {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos())
        .unwrap_or(0);
    let hi = splitmix64((nanos as u64) ^ seq.rotate_left(32));
    let lo = splitmix64(((nanos >> 64) as u64) ^ seq ^ 0x517c_c1b7_2722_0a95);
    let id = ((hi as u128) << 64) | lo as u128;
    if id == 0 {
        1
    } else {
        id
    }
}

/// Parses a W3C-style `traceparent` header (`VV-<32 hex>-<16 hex>-FF`)
/// into `(trace_id, parent_span_id)`. Rejects the all-zero trace id, the
/// invalid version `ff`, and anything malformed.
pub fn parse_traceparent(value: &str) -> Option<(u128, u64)> {
    let mut parts = value.trim().splitn(4, '-');
    let version = parts.next()?;
    let trace = parts.next()?;
    let parent = parts.next()?;
    let flags = parts.next()?;
    if version.len() != 2 || trace.len() != 32 || parent.len() != 16 || flags.len() != 2 {
        return None;
    }
    u8::from_str_radix(version, 16)
        .ok()
        .filter(|&v| v != 0xff)?;
    u8::from_str_radix(flags, 16).ok()?;
    let trace_id = u128::from_str_radix(trace, 16).ok().filter(|&t| t != 0)?;
    let parent_span = u64::from_str_radix(parent, 16).ok()?;
    Some((trace_id, parent_span))
}

/// Renders a `traceparent` header value (sampled flag always set).
pub fn format_traceparent(trace_id: u128, span_id: u64) -> String {
    format!("00-{trace_id:032x}-{span_id:016x}-01")
}

/// Everything the tail sampler needs to know about a finished request.
#[derive(Clone, Copy, Debug, Default)]
pub struct TraceOutcome {
    pub duration: Duration,
    /// The verdict fell down the anytime precision ladder.
    pub degraded: bool,
    /// The job returned an error instead of a verdict.
    pub errored: bool,
    /// The job ran more than once (panic-recovery retry).
    pub retried: bool,
    /// A fleet worker's certificate was rejected during the request.
    pub certificate_rejected: bool,
}

/// Why a trace was retained.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KeepReason {
    Errored,
    CertificateRejected,
    Retried,
    Degraded,
    Slow,
    Sampled,
}

impl KeepReason {
    pub fn as_str(&self) -> &'static str {
        match self {
            KeepReason::Errored => "errored",
            KeepReason::CertificateRejected => "certificate_rejected",
            KeepReason::Retried => "retried",
            KeepReason::Degraded => "degraded",
            KeepReason::Slow => "slow",
            KeepReason::Sampled => "sampled",
        }
    }
}

/// Tail-sampling policy: decide *after* the request which traces to keep.
///
/// Interesting traces (see [`TraceOutcome`]) are always kept; boring ones
/// are sampled by a deterministic hash of the trace id, so the decision is
/// reproducible across runs and thread counts.
#[derive(Clone, Copy, Debug)]
pub struct TailSampler {
    /// Requests at least this slow are always kept.
    pub slow: Duration,
    /// Probability (`0.0..=1.0`) of keeping an otherwise-boring trace.
    pub sample_rate: f64,
}

impl TailSampler {
    /// Whether to keep `trace_id` given its `outcome`, and why.
    pub fn keep(&self, trace_id: u128, outcome: &TraceOutcome) -> Option<KeepReason> {
        if outcome.errored {
            Some(KeepReason::Errored)
        } else if outcome.certificate_rejected {
            Some(KeepReason::CertificateRejected)
        } else if outcome.retried {
            Some(KeepReason::Retried)
        } else if outcome.degraded {
            Some(KeepReason::Degraded)
        } else if outcome.duration >= self.slow {
            Some(KeepReason::Slow)
        } else if self.sample_hit(trace_id) {
            Some(KeepReason::Sampled)
        } else {
            None
        }
    }

    fn sample_hit(&self, trace_id: u128) -> bool {
        if self.sample_rate >= 1.0 {
            return true;
        }
        if self.sample_rate <= 0.0 {
            return false;
        }
        let mixed = splitmix64((trace_id as u64) ^ ((trace_id >> 64) as u64));
        (mixed as f64 / u64::MAX as f64) < self.sample_rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traceparent_roundtrips() {
        let id = mint_trace_id();
        let header = format_traceparent(id, 42);
        let (back, span) = parse_traceparent(&header).expect("parses");
        assert_eq!(back, id);
        assert_eq!(span, 42);
    }

    #[test]
    fn traceparent_rejects_malformed_values() {
        assert!(parse_traceparent("").is_none());
        assert!(parse_traceparent("00-abc-def-01").is_none());
        // All-zero trace id is invalid per the W3C spec.
        let zero = format!("00-{:032x}-{:016x}-01", 0u128, 7u64);
        assert!(parse_traceparent(&zero).is_none());
        // Version ff is reserved-invalid.
        let ff = format!("ff-{:032x}-{:016x}-01", 9u128, 7u64);
        assert!(parse_traceparent(&ff).is_none());
        // Whitespace around an otherwise-valid header is tolerated.
        let ok = format!("  00-{:032x}-{:016x}-00  ", 9u128, 7u64);
        assert_eq!(parse_traceparent(&ok), Some((9, 7)));
    }

    #[test]
    fn minted_trace_ids_are_nonzero_and_distinct() {
        let a = mint_trace_id();
        let b = mint_trace_id();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn buffers_are_keyed_per_collection_not_per_trace_id() {
        // A server and an in-process worker can both collect trace 77.
        let server = begin_trace(77, 1);
        let worker = begin_trace(77, 0);
        record_into(
            server,
            TraceRecord {
                kind: "span",
                name: "local".into(),
                id: 10,
                parent: 1,
                thread: "t".into(),
                start_us: 0,
                dur_us: 5,
                remote: false,
                fields: Vec::new(),
            },
        );
        record_into(
            worker,
            TraceRecord {
                kind: "span",
                name: "remote".into(),
                id: 11,
                parent: 0,
                thread: "w".into(),
                start_us: 0,
                dur_us: 5,
                remote: false,
                fields: Vec::new(),
            },
        );
        let wdata = end_trace(worker);
        let sdata = end_trace(server);
        assert_eq!(wdata.records.len(), 1);
        assert_eq!(wdata.records[0].name, "remote");
        assert_eq!(sdata.records.len(), 1);
        assert_eq!(sdata.records[0].name, "local");
        // Ending twice is a no-op.
        assert!(end_trace(server).records.is_empty());
        discard_trace(server);
    }

    #[test]
    fn ring_buffer_drops_oldest_beyond_cap() {
        let ctx = begin_trace(5, 0);
        for i in 0..(TRACE_BUFFER_CAP + 3) {
            record_into(
                ctx,
                TraceRecord {
                    kind: "event",
                    name: format!("e{i}"),
                    id: 0,
                    parent: 0,
                    thread: "t".into(),
                    start_us: i as u64,
                    dur_us: 0,
                    remote: false,
                    fields: Vec::new(),
                },
            );
        }
        let data = end_trace(ctx);
        assert_eq!(data.records.len(), TRACE_BUFFER_CAP);
        assert_eq!(data.dropped, 3);
        assert_eq!(data.records[0].name, "e3", "oldest records were evicted");
    }

    #[test]
    fn propagate_trace_restores_previous_context() {
        let outer = begin_trace(1, 0);
        let inner = begin_trace(2, 0);
        set_current_trace(Some(outer));
        {
            let _scope = propagate_trace(Some(inner));
            assert_eq!(current_trace(), Some(inner));
        }
        assert_eq!(current_trace(), Some(outer));
        set_current_trace(None);
        discard_trace(outer);
        discard_trace(inner);
    }

    #[test]
    fn tail_sampler_keeps_interesting_traces_at_rate_zero() {
        let sampler = TailSampler {
            slow: Duration::from_millis(50),
            sample_rate: 0.0,
        };
        let fast = TraceOutcome {
            duration: Duration::from_millis(1),
            ..TraceOutcome::default()
        };
        assert_eq!(sampler.keep(9, &fast), None, "boring trace dropped");
        let cases = [
            (
                TraceOutcome {
                    errored: true,
                    ..fast
                },
                KeepReason::Errored,
            ),
            (
                TraceOutcome {
                    certificate_rejected: true,
                    ..fast
                },
                KeepReason::CertificateRejected,
            ),
            (
                TraceOutcome {
                    retried: true,
                    ..fast
                },
                KeepReason::Retried,
            ),
            (
                TraceOutcome {
                    degraded: true,
                    ..fast
                },
                KeepReason::Degraded,
            ),
            (
                TraceOutcome {
                    duration: Duration::from_millis(60),
                    ..fast
                },
                KeepReason::Slow,
            ),
        ];
        for (outcome, reason) in cases {
            assert_eq!(sampler.keep(9, &outcome), Some(reason));
        }
        let all = TailSampler {
            slow: Duration::from_secs(3600),
            sample_rate: 1.0,
        };
        assert_eq!(all.keep(9, &fast), Some(KeepReason::Sampled));
    }

    #[test]
    fn sampling_is_deterministic_per_trace_id() {
        let sampler = TailSampler {
            slow: Duration::from_secs(3600),
            sample_rate: 0.5,
        };
        let boring = TraceOutcome::default();
        for id in 1..64u128 {
            assert_eq!(
                sampler.keep(id, &boring).is_some(),
                sampler.keep(id, &boring).is_some()
            );
        }
        // Rate 0.5 keeps some and drops some over a small id range.
        let kept = (1..256u128)
            .filter(|&id| sampler.keep(id, &boring).is_some())
            .count();
        assert!(kept > 32 && kept < 224, "kept {kept}/255 at rate 0.5");
    }
}
