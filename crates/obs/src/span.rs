//! Hierarchical spans, the JSONL event sink, and the enable switch.
//!
//! Spans time regions of code on the monotonic clock ([`std::time::Instant`])
//! and form a per-thread hierarchy: a span opened while another is live on
//! the same thread records it as its parent, which is what a flamegraph
//! post-processor needs (`scripts/trace2folded.rs` folds the JSONL into
//! `parent;child dur` stacks).
//!
//! Cost model: when telemetry is [disabled](set_enabled) a span is one
//! relaxed atomic load and no clock read; when enabled but no sink is
//! installed it is two clock reads plus an optional histogram observe;
//! JSONL serialization only happens with a sink installed.

use crate::metric::Histogram;
use std::cell::RefCell;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Process-wide switch for clock-reading telemetry (spans and [`Timer`]s).
static ENABLED: AtomicBool = AtomicBool::new(false);
/// Cheap mirror of "a sink is installed" to skip the mutex on the hot path.
static SINK_ACTIVE: AtomicBool = AtomicBool::new(false);
/// The JSONL sink itself.
static SINK: Mutex<Option<Box<dyn Write + Send>>> = Mutex::new(None);
/// Monotonically increasing span/event ids (0 = "no parent").
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Stack of currently-open span ids on this thread.
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// Process epoch: all JSONL timestamps are microseconds since the first
/// telemetry call, keeping traces free of wall-clock skew.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds elapsed since the telemetry epoch (the span timebase).
pub(crate) fn epoch_elapsed_us() -> u64 {
    epoch().elapsed().as_micros() as u64
}

/// Mints a fresh span id from the process-wide sequence.
pub(crate) fn mint_span_id() -> u64 {
    NEXT_ID.fetch_add(1, Ordering::Relaxed)
}

/// Empties the calling thread's span stack.
///
/// `raven-serve` calls this at every job start (and when the watchdog
/// respawns a worker thread) so a span leaked by a panicked or misbehaving
/// job can never become the parent of a later job's spans on the reused
/// thread. Live [`SpanGuard`]s tolerate the clear: their drop pops by id
/// and a missing id is a no-op.
pub fn reset_thread_spans() {
    SPAN_STACK.with(|s| s.borrow_mut().clear());
}

/// Turns clock-reading telemetry on or off (counters are always live).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether clock-reading telemetry is on.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Whether a JSONL sink is installed.
#[inline]
pub fn sink_active() -> bool {
    SINK_ACTIVE.load(Ordering::Relaxed)
}

/// Installs an arbitrary writer as the JSONL sink and enables telemetry.
pub fn set_sink_writer(w: Box<dyn Write + Send>) {
    let mut guard = SINK.lock().unwrap_or_else(|e| e.into_inner());
    *guard = Some(w);
    SINK_ACTIVE.store(true, Ordering::Relaxed);
    set_enabled(true);
    epoch(); // pin the epoch before the first event
}

/// Opens (truncating) `path` and installs it as the JSONL sink.
pub fn set_sink_path(path: &str) -> std::io::Result<()> {
    let file = File::create(path)?;
    set_sink_writer(Box::new(BufWriter::new(file)));
    Ok(())
}

/// Flushes and removes the sink (telemetry stays enabled).
pub fn clear_sink() {
    let mut guard = SINK.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(mut w) = guard.take() {
        let _ = w.flush();
    }
    SINK_ACTIVE.store(false, Ordering::Relaxed);
}

/// Escapes a string for direct inclusion inside JSON quotes.
fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

fn write_line(line: &str) {
    let mut guard = SINK.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(w) = guard.as_mut() {
        let _ = writeln!(w, "{line}");
    }
}

fn thread_label(out: &mut String) {
    let cur = std::thread::current();
    match cur.name() {
        Some(name) => escape_into(out, name),
        None => {
            let _ = std::fmt::Write::write_fmt(out, format_args!("{:?}", cur.id()));
        }
    }
}

/// Emits a one-off structured event (`{"type":"event",...}`) to the sink
/// and, when a [trace context](crate::current_trace) is installed on the
/// thread, into the trace's ring buffer.
///
/// No-op without a sink or trace. Field values are emitted as JSON strings.
pub fn event(name: &str, fields: &[(&str, String)]) {
    let trace = crate::trace::current_trace();
    if !sink_active() && trace.is_none() {
        return;
    }
    let ts_us = epoch_elapsed_us();
    if let Some(ctx) = trace {
        let parent = SPAN_STACK.with(|s| s.borrow().last().copied().unwrap_or(0));
        crate::trace::record_into(
            ctx,
            crate::trace::TraceRecord {
                kind: "event",
                name: name.to_string(),
                id: 0,
                parent: if parent == 0 { ctx.parent_span } else { parent },
                thread: {
                    let mut t = String::new();
                    thread_label(&mut t);
                    t
                },
                start_us: ts_us,
                dur_us: 0,
                remote: false,
                fields: fields
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.clone()))
                    .collect(),
            },
        );
    }
    if !sink_active() {
        return;
    }
    let mut line = String::with_capacity(96);
    line.push_str("{\"type\":\"event\",\"name\":\"");
    escape_into(&mut line, name);
    line.push_str("\",\"thread\":\"");
    thread_label(&mut line);
    let _ = std::fmt::Write::write_fmt(&mut line, format_args!("\",\"ts_us\":{ts_us}"));
    if let Some(ctx) = trace {
        let _ = std::fmt::Write::write_fmt(
            &mut line,
            format_args!(",\"trace\":\"{:032x}\"", ctx.trace_id),
        );
    }
    for (k, v) in fields {
        line.push_str(",\"");
        escape_into(&mut line, k);
        line.push_str("\":\"");
        escape_into(&mut line, v);
        line.push('"');
    }
    line.push('}');
    write_line(&line);
}

/// A live span; the region ends (and the record is emitted) on drop.
///
/// Inert — no clock read, no allocation — when telemetry is disabled.
#[must_use = "a span measures the scope it lives in"]
pub struct SpanGuard {
    /// `None` when telemetry was disabled at open time.
    start: Option<Instant>,
    name: &'static str,
    id: u64,
    parent: u64,
    /// Optional histogram that receives the elapsed seconds.
    hist: Option<&'static Histogram>,
}

/// Opens a span named `name`. See [`SpanGuard`].
pub fn span(name: &'static str) -> SpanGuard {
    span_with(name, None)
}

/// Opens a span that additionally records its elapsed seconds into `hist`
/// — the form used for pipeline phase timings.
pub fn timed_span(name: &'static str, hist: &'static Histogram) -> SpanGuard {
    span_with(name, Some(hist))
}

fn span_with(name: &'static str, hist: Option<&'static Histogram>) -> SpanGuard {
    if !enabled() {
        return SpanGuard {
            start: None,
            name,
            id: 0,
            parent: 0,
            hist: None,
        };
    }
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    let parent = SPAN_STACK.with(|s| {
        let mut s = s.borrow_mut();
        let parent = s.last().copied().unwrap_or(0);
        s.push(id);
        parent
    });
    SpanGuard {
        start: Some(Instant::now()),
        name,
        id,
        parent,
        hist,
    }
}

impl SpanGuard {
    /// This span's id (`0` when telemetry was disabled at open time) —
    /// used to parent remote spans stitched under a fleet dispatch.
    pub fn id(&self) -> u64 {
        self.id
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else {
            return;
        };
        let elapsed = start.elapsed();
        SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            // Pop our own id; scoped drop order makes this the top, but be
            // tolerant of manual early drops out of order.
            if let Some(pos) = s.iter().rposition(|&id| id == self.id) {
                s.remove(pos);
            }
        });
        if let Some(h) = self.hist {
            h.observe(elapsed.as_secs_f64());
        }
        let trace = crate::trace::current_trace();
        if !sink_active() && trace.is_none() {
            return;
        }
        let start_us = (start.saturating_duration_since(epoch())).as_micros() as u64;
        let dur_us = elapsed.as_micros() as u64;
        if let Some(ctx) = trace {
            crate::trace::record_into(
                ctx,
                crate::trace::TraceRecord {
                    kind: "span",
                    name: self.name.to_string(),
                    id: self.id,
                    // A thread-root span belongs to the trace's designated
                    // parent (the request root or the dispatch span).
                    parent: if self.parent == 0 {
                        ctx.parent_span
                    } else {
                        self.parent
                    },
                    thread: {
                        let mut t = String::new();
                        thread_label(&mut t);
                        t
                    },
                    start_us,
                    dur_us,
                    remote: false,
                    fields: Vec::new(),
                },
            );
        }
        if sink_active() {
            let mut line = String::with_capacity(128);
            line.push_str("{\"type\":\"span\",\"name\":\"");
            escape_into(&mut line, self.name);
            let _ = std::fmt::Write::write_fmt(
                &mut line,
                format_args!(
                    "\",\"id\":{},\"parent\":{},\"thread\":\"",
                    self.id, self.parent
                ),
            );
            thread_label(&mut line);
            let _ = std::fmt::Write::write_fmt(
                &mut line,
                format_args!("\",\"start_us\":{start_us},\"dur_us\":{dur_us}"),
            );
            if let Some(ctx) = trace {
                let _ = std::fmt::Write::write_fmt(
                    &mut line,
                    format_args!(",\"trace\":\"{:032x}\"", ctx.trace_id),
                );
            }
            line.push('}');
            write_line(&line);
        }
    }
}

/// Drop-guard that records elapsed seconds into a histogram. Unlike a span
/// it never touches the sink — it is the cheap form for per-layer timings.
#[must_use = "a timer measures the scope it lives in"]
pub struct Timer {
    start: Option<Instant>,
    hist: &'static Histogram,
}

impl Timer {
    /// Starts timing if telemetry is enabled; inert otherwise.
    #[inline]
    pub fn start(hist: &'static Histogram) -> Self {
        Self {
            start: enabled().then(Instant::now),
            hist,
        }
    }
}

impl Drop for Timer {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            self.hist.observe_duration(start.elapsed());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// Serializes tests that flip the process-wide switch or sink.
    fn global_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Shared in-memory sink for inspecting emitted JSONL.
    #[derive(Clone, Default)]
    struct Buf(Arc<Mutex<Vec<u8>>>);

    impl Write for Buf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn spans_nest_and_emit_jsonl() {
        let _g = global_lock();
        let buf = Buf::default();
        set_sink_writer(Box::new(buf.clone()));
        {
            let _outer = span("outer");
            {
                let _inner = span("inner");
            }
        }
        event("note", &[("k", "v\"esc".to_string())]);
        clear_sink();
        set_enabled(false);

        let bytes = buf.0.lock().unwrap().clone();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        // Inner drops (and is emitted) first.
        assert!(lines[0].contains("\"name\":\"inner\""));
        assert!(lines[1].contains("\"name\":\"outer\""));
        assert!(lines[2].contains("\"type\":\"event\""));
        assert!(lines[2].contains("\\\"esc"));

        // The inner span's parent is the outer span's id.
        let id_of = |line: &str, key: &str| -> u64 {
            let rest = &line[line.find(key).unwrap() + key.len()..];
            rest.chars()
                .take_while(|c| c.is_ascii_digit())
                .collect::<String>()
                .parse()
                .unwrap()
        };
        let outer_id = id_of(lines[1], "\"id\":");
        let inner_parent = id_of(lines[0], "\"parent\":");
        assert_eq!(inner_parent, outer_id);
        assert_eq!(id_of(lines[1], "\"parent\":"), 0);
    }

    #[test]
    fn disabled_spans_are_inert() {
        let _g = global_lock();
        set_enabled(false);
        let g = span("quiet");
        assert!(g.start.is_none());
        drop(g);
    }
}
