//! Property-based soundness tests for interval arithmetic: for any two
//! intervals and any points inside them, the interval operation must
//! contain the pointwise result.

use proptest::prelude::*;
use raven_interval::Interval;

fn interval_and_point() -> impl Strategy<Value = (Interval, f64)> {
    (-50.0f64..50.0, 0.0f64..20.0, 0.0f64..1.0).prop_map(|(lo, width, t)| {
        let iv = Interval::new(lo, lo + width);
        (iv, lo + width * t)
    })
}

proptest! {
    #[test]
    fn add_contains_pointwise((a, x) in interval_and_point(), (b, y) in interval_and_point()) {
        prop_assert!((a + b).contains(x + y));
    }

    #[test]
    fn sub_contains_pointwise((a, x) in interval_and_point(), (b, y) in interval_and_point()) {
        prop_assert!((a - b).contains(x - y));
    }

    #[test]
    fn mul_contains_pointwise((a, x) in interval_and_point(), (b, y) in interval_and_point()) {
        let prod = a * b;
        // Allow a relative epsilon for rounding of the products.
        let tol = 1e-9 * (1.0 + (x * y).abs());
        prop_assert!(prod.lo() - tol <= x * y && x * y <= prod.hi() + tol);
    }

    #[test]
    fn scalar_mul_contains_pointwise((a, x) in interval_and_point(), k in -10.0f64..10.0) {
        let tol = 1e-9 * (1.0 + (k * x).abs());
        let scaled = a * k;
        prop_assert!(scaled.lo() - tol <= k * x && k * x <= scaled.hi() + tol);
    }

    #[test]
    fn hull_contains_both((a, x) in interval_and_point(), (b, y) in interval_and_point()) {
        let h = a.hull(&b);
        prop_assert!(h.contains(x) && h.contains(y));
        prop_assert!(h.contains_interval(&a) && h.contains_interval(&b));
    }

    #[test]
    fn intersect_is_largest_common((a, _) in interval_and_point(), (b, _) in interval_and_point()) {
        let i = a.intersect(&b);
        if !i.is_empty() {
            prop_assert!(a.contains_interval(&i) && b.contains_interval(&i));
            prop_assert!(i.width() <= a.width() + 1e-12);
            prop_assert!(i.width() <= b.width() + 1e-12);
        }
    }

    #[test]
    fn neg_is_involutive((a, x) in interval_and_point()) {
        prop_assert!((-(-a)).contains(x));
        prop_assert_eq!(-(-a), a);
    }

    #[test]
    fn width_is_nonnegative_and_additive((a, _) in interval_and_point(), (b, _) in interval_and_point()) {
        prop_assert!(a.width() >= 0.0);
        let sum_w = (a + b).width();
        prop_assert!((sum_w - (a.width() + b.width())).abs() < 1e-9 * (1.0 + sum_w));
    }
}
