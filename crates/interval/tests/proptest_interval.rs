//! Randomized soundness tests for interval arithmetic: for any two
//! intervals and any points inside them, the interval operation must
//! contain the pointwise result.
//!
//! Driven by the workspace's deterministic [`Rng`] so the suite builds
//! offline and replays identically on every run.

use raven_interval::Interval;
use raven_tensor::Rng;

const CASES: usize = 128;

fn interval_and_point(rng: &mut Rng) -> (Interval, f64) {
    let lo = rng.in_range(-50.0, 50.0);
    let width = rng.in_range(0.0, 20.0);
    let t = rng.uniform();
    (Interval::new(lo, lo + width), lo + width * t)
}

#[test]
fn add_contains_pointwise() {
    let mut rng = Rng::new(0x1_f0);
    for _ in 0..CASES {
        let (a, x) = interval_and_point(&mut rng);
        let (b, y) = interval_and_point(&mut rng);
        assert!((a + b).contains(x + y));
    }
}

#[test]
fn sub_contains_pointwise() {
    let mut rng = Rng::new(0x1_f1);
    for _ in 0..CASES {
        let (a, x) = interval_and_point(&mut rng);
        let (b, y) = interval_and_point(&mut rng);
        assert!((a - b).contains(x - y));
    }
}

#[test]
fn mul_contains_pointwise() {
    let mut rng = Rng::new(0x1_f2);
    for _ in 0..CASES {
        let (a, x) = interval_and_point(&mut rng);
        let (b, y) = interval_and_point(&mut rng);
        let prod = a * b;
        // Allow a relative epsilon for rounding of the products.
        let tol = 1e-9 * (1.0 + (x * y).abs());
        assert!(prod.lo() - tol <= x * y && x * y <= prod.hi() + tol);
    }
}

#[test]
fn scalar_mul_contains_pointwise() {
    let mut rng = Rng::new(0x1_f3);
    for _ in 0..CASES {
        let (a, x) = interval_and_point(&mut rng);
        let k = rng.in_range(-10.0, 10.0);
        let tol = 1e-9 * (1.0 + (k * x).abs());
        let scaled = a * k;
        assert!(scaled.lo() - tol <= k * x && k * x <= scaled.hi() + tol);
    }
}

#[test]
fn hull_contains_both() {
    let mut rng = Rng::new(0x1_f4);
    for _ in 0..CASES {
        let (a, x) = interval_and_point(&mut rng);
        let (b, y) = interval_and_point(&mut rng);
        let h = a.hull(&b);
        assert!(h.contains(x) && h.contains(y));
        assert!(h.contains_interval(&a) && h.contains_interval(&b));
    }
}

#[test]
fn intersect_is_largest_common() {
    let mut rng = Rng::new(0x1_f5);
    for _ in 0..CASES {
        let (a, _) = interval_and_point(&mut rng);
        let (b, _) = interval_and_point(&mut rng);
        let i = a.intersect(&b);
        if !i.is_empty() {
            assert!(a.contains_interval(&i) && b.contains_interval(&i));
            assert!(i.width() <= a.width() + 1e-12);
            assert!(i.width() <= b.width() + 1e-12);
        }
    }
}

#[test]
fn neg_is_involutive() {
    let mut rng = Rng::new(0x1_f6);
    for _ in 0..CASES {
        let (a, x) = interval_and_point(&mut rng);
        assert!((-(-a)).contains(x));
        assert_eq!(-(-a), a);
    }
}

#[test]
fn width_is_nonnegative_and_additive() {
    let mut rng = Rng::new(0x1_f7);
    for _ in 0..CASES {
        let (a, _) = interval_and_point(&mut rng);
        let (b, _) = interval_and_point(&mut rng);
        assert!(a.width() >= 0.0);
        let sum_w = (a + b).width();
        assert!((sum_w - (a.width() + b.width())).abs() < 1e-9 * (1.0 + sum_w));
    }
}
