//! Interval (Box) abstract domain.
//!
//! The weakest — and fastest — verifier baseline in the RaVeN evaluation:
//! every neuron is over-approximated by an independent interval, losing all
//! correlations. It also supplies the concrete bound machinery used inside
//! DeepPoly and DiffPoly (concretization of symbolic bounds is interval
//! evaluation over the input box).
//!
//! # Examples
//!
//! ```
//! use raven_interval::{linf_ball, Interval, IntervalAnalysis};
//! use raven_nn::{ActKind, NetworkBuilder};
//!
//! let plan = NetworkBuilder::new(2)
//!     .dense(4, 1)
//!     .activation(ActKind::Relu)
//!     .dense(2, 2)
//!     .build()
//!     .to_plan();
//! let ball = linf_ball(&[0.5, 0.5], 0.1, 0.0, 1.0);
//! let analysis = IntervalAnalysis::run(&plan, &ball);
//! assert_eq!(analysis.output().len(), 2);
//! ```

mod analyze;
mod interval;
pub mod metrics;

pub use analyze::{act_image, affine_image, linf_ball, IntervalAnalysis};
pub use interval::Interval;
