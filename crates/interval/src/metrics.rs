//! Box-domain telemetry. Observe-only; see `raven-obs` for the
//! determinism contract.

use raven_obs::{Counter, Desc, MetricRef};

/// Plan steps propagated by the Box domain.
pub static LAYERS: Counter = Counter::new();

/// Exposition table for this crate, in stable scrape order.
pub static DESCS: [Desc; 1] = [Desc {
    name: "raven_interval_layers_total",
    help: "Plan steps propagated by the interval (Box) domain.",
    labels: "",
    metric: MetricRef::Counter(&LAYERS),
}];
