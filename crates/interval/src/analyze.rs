//! Interval (Box) propagation through an [`AnalysisPlan`].

use crate::Interval;
use raven_nn::{ActKind, AnalysisPlan, PlanStep};
use raven_tensor::Matrix;

/// Sound interval image of the affine map `W x + b` using center–radius
/// evaluation: `y = W c + b ± |W| r`.
///
/// # Panics
///
/// Panics when `input.len() != weight.cols()` or any input is empty.
pub fn affine_image(weight: &Matrix, bias: &[f64], input: &[Interval]) -> Vec<Interval> {
    assert_eq!(input.len(), weight.cols(), "affine_image: width mismatch");
    let center: Vec<f64> = input
        .iter()
        .map(|iv| {
            assert!(!iv.is_empty(), "affine_image: empty input interval");
            iv.mid()
        })
        .collect();
    let radius: Vec<f64> = input.iter().map(|iv| 0.5 * iv.width()).collect();
    (0..weight.rows())
        .map(|i| {
            let row = weight.row(i);
            let c = raven_tensor::dot(row, &center) + bias[i];
            let r: f64 = row
                .iter()
                .zip(&radius)
                .map(|(&w, &rad)| w.abs() * rad)
                .sum();
            Interval::new(c - r, c + r)
        })
        .collect()
}

/// Sound interval image of an elementwise activation (all supported
/// activations are monotone).
pub fn act_image(kind: ActKind, input: &[Interval]) -> Vec<Interval> {
    input
        .iter()
        .map(|iv| iv.map_monotone(|x| kind.eval(x)))
        .collect()
}

/// Result of running interval analysis: one vector of intervals per plan
/// boundary (`bounds[0]` is the input box, `bounds.last()` the output box).
#[derive(Debug, Clone, PartialEq)]
pub struct IntervalAnalysis {
    /// Per-boundary interval vectors.
    pub bounds: Vec<Vec<Interval>>,
}

impl IntervalAnalysis {
    /// Runs the Box domain over `plan` starting from `input`.
    ///
    /// # Panics
    ///
    /// Panics when `input.len() != plan.input_dim()`.
    pub fn run(plan: &AnalysisPlan, input: &[Interval]) -> Self {
        assert_eq!(
            input.len(),
            plan.input_dim(),
            "interval analysis: input width mismatch"
        );
        let mut bounds = Vec::with_capacity(plan.steps().len() + 1);
        bounds.push(input.to_vec());
        crate::metrics::LAYERS.add(plan.steps().len() as u64);
        for step in plan.steps() {
            let cur = bounds.last().expect("bounds non-empty");
            let next = match step {
                PlanStep::Affine { weight, bias } => affine_image(weight, bias, cur),
                PlanStep::Act(kind) => act_image(*kind, cur),
            };
            bounds.push(next);
        }
        Self { bounds }
    }

    /// Interval bounds on the network output.
    pub fn output(&self) -> &[Interval] {
        self.bounds.last().expect("bounds non-empty")
    }
}

/// The ℓ∞ ball of radius `eps` around `center`, intersected with
/// `[clamp_lo, clamp_hi]` (use `-inf/inf` for no clamping).
///
/// # Examples
///
/// ```
/// let ball = raven_interval::linf_ball(&[0.95, 0.5], 0.1, 0.0, 1.0);
/// assert_eq!(ball[0].hi(), 1.0);
/// assert_eq!(ball[1].lo(), 0.4);
/// ```
pub fn linf_ball(center: &[f64], eps: f64, clamp_lo: f64, clamp_hi: f64) -> Vec<Interval> {
    center
        .iter()
        .map(|&c| Interval::new((c - eps).max(clamp_lo), (c + eps).min(clamp_hi)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use raven_nn::NetworkBuilder;

    #[test]
    fn affine_image_contains_all_corner_images() {
        let w = Matrix::from_rows(&[&[1.0, -2.0], &[0.5, 0.5]]);
        let b = [0.1, -0.1];
        let input = [Interval::new(-1.0, 1.0), Interval::new(0.0, 2.0)];
        let out = affine_image(&w, &b, &input);
        for &x0 in &[-1.0, 1.0] {
            for &x1 in &[0.0, 2.0] {
                let y = [1.0 * x0 - 2.0 * x1 + 0.1, 0.5 * x0 + 0.5 * x1 - 0.1];
                assert!(out[0].contains(y[0]));
                assert!(out[1].contains(y[1]));
            }
        }
    }

    #[test]
    fn analysis_output_contains_concrete_executions() {
        let net = NetworkBuilder::new(3)
            .dense(5, 2)
            .activation(ActKind::Relu)
            .dense(2, 3)
            .activation(ActKind::Sigmoid)
            .build();
        let plan = net.to_plan();
        let center = [0.4, 0.6, 0.5];
        let ball = linf_ball(&center, 0.05, 0.0, 1.0);
        let analysis = IntervalAnalysis::run(&plan, &ball);
        // Sample a few concrete points inside the ball.
        for s in 0..10 {
            let t = s as f64 / 9.0;
            let x: Vec<f64> = center
                .iter()
                .map(|&c| (c - 0.05 + 0.1 * t).clamp(0.0, 1.0))
                .collect();
            let y = net.forward(&x);
            for (iv, &v) in analysis.output().iter().zip(&y) {
                assert!(
                    iv.lo() - 1e-9 <= v && v <= iv.hi() + 1e-9,
                    "{iv} does not contain {v}"
                );
            }
        }
    }

    #[test]
    fn linf_ball_clamps() {
        let ball = linf_ball(&[0.02], 0.1, 0.0, 1.0);
        assert_eq!(ball[0].lo(), 0.0);
        assert!((ball[0].hi() - 0.12).abs() < 1e-15);
    }

    #[test]
    fn point_input_gives_exact_forward() {
        let net = NetworkBuilder::new(2)
            .dense(3, 8)
            .activation(ActKind::Tanh)
            .dense(2, 9)
            .build();
        let plan = net.to_plan();
        let x = [0.3, 0.7];
        let box_in: Vec<Interval> = x.iter().map(|&v| Interval::point(v)).collect();
        let analysis = IntervalAnalysis::run(&plan, &box_in);
        let y = net.forward(&x);
        for (iv, &v) in analysis.output().iter().zip(&y) {
            assert!((iv.lo() - v).abs() < 1e-9 && (iv.hi() - v).abs() < 1e-9);
        }
    }
}
