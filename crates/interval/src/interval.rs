use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// A closed interval `[lo, hi]` over `f64`.
///
/// The empty interval is represented by `lo > hi` (see
/// [`Interval::is_empty`]). Arithmetic follows standard interval semantics
/// and is sound up to floating-point rounding (the same model the paper's
/// tooling uses; see `DESIGN.md` for the rounding caveat).
///
/// # Examples
///
/// ```
/// use raven_interval::Interval;
///
/// let a = Interval::new(-1.0, 2.0);
/// let b = Interval::new(0.5, 0.5);
/// assert_eq!((a + b).lo(), -0.5);
/// assert_eq!((a * 2.0).hi(), 4.0);
/// assert!(a.contains(0.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    lo: f64,
    hi: f64,
}

impl Interval {
    /// Creates `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics when either endpoint is NaN.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(!lo.is_nan() && !hi.is_nan(), "interval endpoints are NaN");
        Self { lo, hi }
    }

    /// The degenerate interval `[x, x]`.
    pub fn point(x: f64) -> Self {
        Self::new(x, x)
    }

    /// The interval `[-r, r]`.
    ///
    /// # Panics
    ///
    /// Panics when `r < 0` or NaN.
    pub fn symmetric(r: f64) -> Self {
        assert!(r >= 0.0, "radius must be non-negative");
        Self::new(-r, r)
    }

    /// An empty interval.
    pub fn empty() -> Self {
        Self {
            lo: f64::INFINITY,
            hi: f64::NEG_INFINITY,
        }
    }

    /// The whole real line.
    pub fn top() -> Self {
        Self {
            lo: f64::NEG_INFINITY,
            hi: f64::INFINITY,
        }
    }

    /// Lower endpoint.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper endpoint.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Whether the interval contains no points.
    pub fn is_empty(&self) -> bool {
        self.lo > self.hi
    }

    /// Width `hi - lo` (0 for empty intervals).
    pub fn width(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.hi - self.lo
        }
    }

    /// Midpoint, always finite for non-empty intervals.
    ///
    /// Half-unbounded intervals anchor at their finite endpoint and the
    /// whole line anchors at 0 — `0.5 * (lo + hi)` would produce ±∞ or NaN
    /// there, which poisons downstream consumers that use `mid` as a
    /// relaxation anchor point (e.g. the DiffPoly candidate-line selection).
    /// Empty intervals still return NaN.
    pub fn mid(&self) -> f64 {
        if self.is_empty() {
            return f64::NAN;
        }
        match (self.lo.is_finite(), self.hi.is_finite()) {
            (true, true) => 0.5 * (self.lo + self.hi),
            (true, false) => self.lo,
            (false, true) => self.hi,
            (false, false) => 0.0,
        }
    }

    /// Whether `x` lies inside.
    pub fn contains(&self, x: f64) -> bool {
        self.lo <= x && x <= self.hi
    }

    /// Whether `other` is a subset of `self`.
    pub fn contains_interval(&self, other: &Interval) -> bool {
        other.is_empty() || (self.lo <= other.lo && other.hi <= self.hi)
    }

    /// Smallest interval containing both.
    pub fn hull(&self, other: &Interval) -> Interval {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        Interval::new(self.lo.min(other.lo), self.hi.max(other.hi))
    }

    /// Intersection (may be empty).
    pub fn intersect(&self, other: &Interval) -> Interval {
        Interval {
            lo: self.lo.max(other.lo),
            hi: self.hi.min(other.hi),
        }
    }

    /// Image under a monotone non-decreasing function.
    pub fn map_monotone<F: Fn(f64) -> f64>(&self, f: F) -> Interval {
        if self.is_empty() {
            return Interval::empty();
        }
        Interval::new(f(self.lo), f(self.hi))
    }

    /// Clamps both endpoints into `[lo, hi]`.
    pub fn clamp_to(&self, lo: f64, hi: f64) -> Interval {
        self.intersect(&Interval::new(lo, hi))
    }
}

impl Add for Interval {
    type Output = Interval;

    fn add(self, rhs: Interval) -> Interval {
        if self.is_empty() || rhs.is_empty() {
            return Interval::empty();
        }
        Interval::new(self.lo + rhs.lo, self.hi + rhs.hi)
    }
}

impl Sub for Interval {
    type Output = Interval;

    fn sub(self, rhs: Interval) -> Interval {
        if self.is_empty() || rhs.is_empty() {
            return Interval::empty();
        }
        Interval::new(self.lo - rhs.hi, self.hi - rhs.lo)
    }
}

impl Neg for Interval {
    type Output = Interval;

    fn neg(self) -> Interval {
        if self.is_empty() {
            return Interval::empty();
        }
        Interval::new(-self.hi, -self.lo)
    }
}

impl Mul<f64> for Interval {
    type Output = Interval;

    fn mul(self, k: f64) -> Interval {
        if self.is_empty() {
            return Interval::empty();
        }
        if k >= 0.0 {
            Interval::new(self.lo * k, self.hi * k)
        } else {
            Interval::new(self.hi * k, self.lo * k)
        }
    }
}

impl Mul for Interval {
    type Output = Interval;

    fn mul(self, rhs: Interval) -> Interval {
        if self.is_empty() || rhs.is_empty() {
            return Interval::empty();
        }
        let candidates = [
            self.lo * rhs.lo,
            self.lo * rhs.hi,
            self.hi * rhs.lo,
            self.hi * rhs.hi,
        ];
        let lo = candidates.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = candidates.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        Interval::new(lo, hi)
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            write!(f, "∅")
        } else {
            write!(f, "[{}, {}]", self.lo, self.hi)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mid_is_finite_for_any_nonempty_interval() {
        assert_eq!(Interval::new(-1.0, 3.0).mid(), 1.0);
        assert_eq!(Interval::point(0.25).mid(), 0.25);
        // Half-unbounded intervals anchor at the finite endpoint.
        assert_eq!(Interval::new(2.0, f64::INFINITY).mid(), 2.0);
        assert_eq!(Interval::new(f64::NEG_INFINITY, -4.0).mid(), -4.0);
        // The whole line anchors at the origin; empty stays NaN.
        assert_eq!(Interval::top().mid(), 0.0);
        assert!(Interval::empty().mid().is_nan());
    }

    #[test]
    fn arithmetic_matches_endpoint_analysis() {
        let a = Interval::new(-1.0, 2.0);
        let b = Interval::new(3.0, 4.0);
        assert_eq!(a + b, Interval::new(2.0, 6.0));
        assert_eq!(a - b, Interval::new(-5.0, -1.0));
        assert_eq!(a * b, Interval::new(-4.0, 8.0));
        assert_eq!(-a, Interval::new(-2.0, 1.0));
        assert_eq!(a * -2.0, Interval::new(-4.0, 2.0));
    }

    #[test]
    fn empty_absorbs() {
        let e = Interval::empty();
        let a = Interval::new(0.0, 1.0);
        assert!((e + a).is_empty());
        assert!((a * e).is_empty());
        assert!(e.is_empty());
        assert_eq!(e.width(), 0.0);
        assert_eq!(a.hull(&e), a);
    }

    #[test]
    fn hull_and_intersect_are_duals() {
        let a = Interval::new(0.0, 2.0);
        let b = Interval::new(1.0, 3.0);
        assert_eq!(a.hull(&b), Interval::new(0.0, 3.0));
        assert_eq!(a.intersect(&b), Interval::new(1.0, 2.0));
        assert!(a.intersect(&Interval::new(5.0, 6.0)).is_empty());
    }

    #[test]
    fn containment() {
        let a = Interval::new(0.0, 2.0);
        assert!(a.contains(0.0) && a.contains(2.0) && !a.contains(2.1));
        assert!(a.contains_interval(&Interval::new(0.5, 1.5)));
        assert!(a.contains_interval(&Interval::empty()));
        assert!(!a.contains_interval(&Interval::new(-0.1, 1.0)));
    }

    #[test]
    fn monotone_map_and_clamp() {
        let a = Interval::new(-2.0, 3.0);
        let r = a.map_monotone(|x| x.max(0.0));
        assert_eq!(r, Interval::new(0.0, 3.0));
        assert_eq!(a.clamp_to(0.0, 1.0), Interval::new(0.0, 1.0));
    }
}
