//! Benchmarks of end-to-end verification per method — the timing
//! companion of table T5.

use raven::{
    verify_monotonicity, verify_uap, Method, MonotonicityProblem, RavenConfig, UapProblem,
};
use raven_bench::models::{credit_model, fc_model, uap_batches, Training};
use raven_bench::timing::bench;

fn main() {
    let model = fc_model("fc-small", Training::Standard);
    let plan = model.net.to_plan();
    let (inputs, labels) = uap_batches(&model, 3, 1).remove(0);
    let problem = UapProblem {
        plan,
        inputs,
        labels,
        eps: 0.09,
    };
    let config = RavenConfig::default();
    for method in Method::all() {
        bench(&format!("uap/{method}/fc-small"), 10, 3, || {
            verify_uap(std::hint::black_box(&problem), method, &config);
        });
    }

    let credit = credit_model();
    let mono = MonotonicityProblem {
        plan: credit.net.to_plan(),
        center: credit.test.inputs[0].clone(),
        eps: 0.01,
        feature: 0,
        tau: 0.1,
        output_weights: vec![-1.0, 1.0],
        increasing: true,
    };
    for method in [Method::DeepPolyIndividual, Method::Raven] {
        bench(&format!("monotonicity/{method}/credit"), 10, 3, || {
            verify_monotonicity(std::hint::black_box(&mono), method, &config);
        });
    }
}
