//! Criterion micro-benchmarks of the abstract domains: interval vs DeepPoly
//! vs DiffPoly propagation cost on the benchmark networks (supports the
//! runtime claims in T5).

use criterion::{criterion_group, criterion_main, Criterion};
use raven_bench::models::{fc_model, Training};
use raven_deeppoly::DeepPolyAnalysis;
use raven_diffpoly::DiffPolyAnalysis;
use raven_interval::{linf_ball, Interval, IntervalAnalysis};
use raven_zonotope::ZonotopeAnalysis;

fn bench_domains(c: &mut Criterion) {
    let model = fc_model("fc-med", Training::Standard);
    let plan = model.net.to_plan();
    let za = model.test.inputs[0].clone();
    let zb = model.test.inputs[1].clone();
    let eps = 0.05;
    let ball_a = linf_ball(&za, eps, f64::NEG_INFINITY, f64::INFINITY);
    let ball_b = linf_ball(&zb, eps, f64::NEG_INFINITY, f64::INFINITY);

    c.bench_function("interval/fc-med", |b| {
        b.iter(|| IntervalAnalysis::run(&plan, std::hint::black_box(&ball_a)))
    });
    c.bench_function("zonotope/fc-med", |b| {
        b.iter(|| ZonotopeAnalysis::run(&plan, std::hint::black_box(&ball_a)))
    });
    c.bench_function("deeppoly/fc-med", |b| {
        b.iter(|| DeepPolyAnalysis::run(&plan, std::hint::black_box(&ball_a)))
    });

    let dp_a = DeepPolyAnalysis::run(&plan, &ball_a);
    let dp_b = DeepPolyAnalysis::run(&plan, &ball_b);
    let delta: Vec<Interval> = za
        .iter()
        .zip(&zb)
        .map(|(&a, &b)| Interval::point(a - b))
        .collect();
    c.bench_function("diffpoly-pair/fc-med", |b| {
        b.iter(|| DiffPolyAnalysis::run(&plan, &dp_a, &dp_b, std::hint::black_box(&delta)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_domains
}
criterion_main!(benches);
