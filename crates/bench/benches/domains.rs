//! Micro-benchmarks of the abstract domains: interval vs DeepPoly vs
//! DiffPoly propagation cost on the benchmark networks (supports the
//! runtime claims in T5).

use raven_bench::models::{fc_model, Training};
use raven_bench::timing::bench;
use raven_deeppoly::DeepPolyAnalysis;
use raven_diffpoly::DiffPolyAnalysis;
use raven_interval::{linf_ball, Interval, IntervalAnalysis};
use raven_zonotope::ZonotopeAnalysis;

fn main() {
    let model = fc_model("fc-med", Training::Standard);
    let plan = model.net.to_plan();
    let za = model.test.inputs[0].clone();
    let zb = model.test.inputs[1].clone();
    let eps = 0.05;
    let ball_a = linf_ball(&za, eps, f64::NEG_INFINITY, f64::INFINITY);
    let ball_b = linf_ball(&zb, eps, f64::NEG_INFINITY, f64::INFINITY);

    bench("interval/fc-med", 20, 50, || {
        IntervalAnalysis::run(&plan, std::hint::black_box(&ball_a));
    });
    bench("zonotope/fc-med", 20, 20, || {
        ZonotopeAnalysis::run(&plan, std::hint::black_box(&ball_a));
    });
    bench("deeppoly/fc-med", 20, 10, || {
        DeepPolyAnalysis::run(&plan, std::hint::black_box(&ball_a));
    });

    let dp_a = DeepPolyAnalysis::run(&plan, &ball_a);
    let dp_b = DeepPolyAnalysis::run(&plan, &ball_b);
    let delta: Vec<Interval> = za
        .iter()
        .zip(&zb)
        .map(|(&a, &b)| Interval::point(a - b))
        .collect();
    bench("diffpoly-pair/fc-med", 20, 10, || {
        DiffPolyAnalysis::run(&plan, &dp_a, &dp_b, std::hint::black_box(&delta));
    });
}
