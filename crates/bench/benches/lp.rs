//! Micro-benchmarks of the LP/MILP substrate: simplex scaling with
//! problem size, and the branch-and-bound overhead on counting specs.

use raven_bench::timing::bench;
use raven_lp::{Direction, LinExpr, LpProblem, Sense};

/// A dense random-ish transportation-style LP with `n` variables and `n`
/// constraints (deterministic coefficients).
fn make_lp(n: usize) -> LpProblem {
    let mut p = LpProblem::new();
    let vars: Vec<_> = (0..n).map(|_| p.add_var(0.0, 10.0)).collect();
    for i in 0..n {
        let mut row = LinExpr::new();
        for (j, &v) in vars.iter().enumerate() {
            let c = (((i * 31 + j * 17 + 7) % 13) as f64 - 4.0) / 4.0;
            if c != 0.0 {
                row.push(c, v);
            }
        }
        p.add_constraint(row, Sense::Le, 5.0 + (i % 7) as f64);
    }
    let obj: LinExpr = vars
        .iter()
        .enumerate()
        .map(|(j, &v)| (v, 1.0 + ((j * 11) % 5) as f64 / 5.0))
        .collect();
    p.set_objective(Direction::Maximize, obj);
    p
}

/// A 0/1 knapsack with `n` items.
fn make_knapsack(n: usize) -> LpProblem {
    let mut p = LpProblem::new();
    let mut weight_row = LinExpr::new();
    let mut obj = LinExpr::new();
    for j in 0..n {
        let v = p.add_binary_var();
        weight_row.push(1.0 + ((j * 7) % 5) as f64, v);
        obj.push(1.0 + ((j * 13) % 9) as f64, v);
    }
    p.add_constraint(weight_row, Sense::Le, n as f64);
    p.set_objective(Direction::Maximize, obj);
    p
}

fn main() {
    for &n in &[20usize, 60, 120] {
        let p = make_lp(n);
        bench(&format!("simplex/{n}"), 15, 5, || {
            p.solve().expect("lp solves");
        });
    }

    for &n in &[8usize, 12] {
        let p = make_knapsack(n);
        bench(&format!("milp-knapsack/{n}"), 15, 3, || {
            p.solve_milp().expect("milp solves");
        });
    }
}
