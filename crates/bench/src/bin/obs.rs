//! Emits `BENCH_obs.json`: wall time *and* solver counters for a fixed
//! verification workload.
//!
//! Wall time alone cannot distinguish "the solver got faster" from "the
//! solver did less work"; the `raven-obs` counters can. This bench runs a
//! fixed UAP + targeted-UAP + monotonicity workload on the fc-small zoo
//! model, snapshots the solver/analysis counters before and after, and
//! records the deltas next to the timing — so a perf regression (or win)
//! in a future change decomposes into pivots, dual pivots, warm starts,
//! B&B nodes, presolve eliminations, and per-phase seconds.
//!
//! The high-ε batch and the per-label targeted queries are sized so the
//! spec MILP actually branches: `milp_nodes`, `lp_dual_pivots`, and
//! `lp_warm_starts` are all non-zero, which is what makes the report a
//! meaningful guard for the branch-and-bound hot path.
//!
//! Certificate overhead, fleet dispatch round trips, and tracing overhead
//! (the same workload with and without a per-request trace context) are
//! measured *after* the counter snapshot, so the pivot-regression gate
//! below keeps comparing like with like across baselines that predate
//! them.
//!
//! Usage: `cargo run -p raven-bench --release --bin obs -- [--out FILE]
//! [--threads n] [--check BASELINE]` (default output `BENCH_obs.json`).
//! With `--check`, the freshly measured pivot total (primal + dual) is
//! compared against the committed baseline and the process exits non-zero
//! on a >20% regression — wired into `scripts/tier1.sh`.

use raven::{
    verify_monotonicity, verify_targeted_uap_all, verify_uap, Method, MonotonicityProblem,
    RavenConfig, UapProblem,
};
use raven_bench::models::{fc_model, uap_batches, Training};
use raven_json::Json;
use raven_obs::Counter;
use std::time::Instant;

/// The counters recorded in the report, with their JSON keys.
fn counters() -> Vec<(&'static str, &'static Counter)> {
    use raven::metrics as core_m;
    use raven_lp::metrics as lp_m;
    vec![
        ("simplex_pivots", &lp_m::SIMPLEX_PIVOTS),
        ("lp_dual_pivots", &lp_m::LP_DUAL_PIVOTS),
        ("lp_warm_starts", &lp_m::LP_WARM_STARTS),
        ("lp_solves", &lp_m::LP_SOLVES),
        ("presolve_rows_removed", &lp_m::PRESOLVE_ROWS_REMOVED),
        (
            "presolve_bounds_tightened",
            &lp_m::PRESOLVE_BOUNDS_TIGHTENED,
        ),
        ("milp_nodes", &lp_m::MILP_NODES),
        ("milp_nodes_pruned", &lp_m::MILP_NODES_PRUNED),
        ("milp_incumbent_updates", &lp_m::MILP_INCUMBENT_UPDATES),
        ("interval_layers", &raven_interval::metrics::LAYERS),
        (
            "deeppoly_relaxed_neurons",
            &raven_deeppoly::metrics::RELAXED_NEURONS,
        ),
        (
            "deeppoly_split_neurons",
            &raven_deeppoly::metrics::SPLIT_NEURONS,
        ),
        (
            "diffpoly_pair_analyses",
            &raven_diffpoly::metrics::PAIR_ANALYSES,
        ),
        ("uap_runs", &core_m::UAP_RUNS),
        ("mono_runs", &core_m::MONO_RUNS),
    ]
}

/// Total simplex work in a report: primal pivots plus dual (warm-start)
/// pivots. Old baselines predate the dual counter; a missing key reads 0.
fn pivot_total(report: &Json) -> f64 {
    let counter = |key: &str| {
        report
            .get("counters")
            .and_then(|c| c.get(key))
            .and_then(|v| v.as_f64())
            .unwrap_or(0.0)
    };
    counter("simplex_pivots") + counter("lp_dual_pivots")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let threads = raven_bench::threads_arg(&args);
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let out = flag("--out").unwrap_or_else(|| "BENCH_obs.json".to_string());
    let check = flag("--check");

    // Phase timings need the clock-reading side of telemetry.
    raven_obs::set_enabled(true);
    let model = fc_model("fc-small", Training::Pgd);
    let plan = model.net.to_plan();
    let config = RavenConfig {
        threads,
        ..RavenConfig::default()
    };

    let before: Vec<u64> = counters().iter().map(|(_, c)| c.get()).collect();
    let start = Instant::now();

    // Fixed workload, three parts:
    //
    // 1. Two relational UAP batches (k=3) at a moderate ε — covers
    //    DeepPoly, DiffPoly, and the relational LP, usually without
    //    indicators.
    let eps = 0.03;
    for (inputs, labels) in uap_batches(&model, 3, 2) {
        let problem = UapProblem {
            plan: plan.clone(),
            inputs,
            labels,
            eps,
        };
        let _ = verify_uap(&problem, Method::Raven, &config);
    }
    // 2. One high-ε batch (k=4) where individual robustness fails: the
    //    spec MILP branches, exercising the dual-simplex warm starts on
    //    the B&B hot path, plus the per-label targeted queries that share
    //    one relaxation encoding and one basis cache across all labels.
    let hot_eps = 0.45;
    let (inputs, labels) = uap_batches(&model, 4, 3).swap_remove(2);
    let hot = UapProblem {
        plan: plan.clone(),
        inputs,
        labels,
        eps: hot_eps,
    };
    let _ = verify_uap(&hot, Method::Raven, &config);
    let all_labels: Vec<usize> = (0..plan.output_dim()).collect();
    let _ = verify_targeted_uap_all(&hot, &all_labels, Method::Raven, &config);
    // 3. One LP-tier monotonicity query.
    let dim = plan.input_dim();
    let odim = plan.output_dim();
    let mut weights = vec![0.0; odim];
    weights[0] = -1.0;
    weights[odim - 1] = 1.0;
    let mono = MonotonicityProblem {
        plan: plan.clone(),
        center: vec![0.5; dim],
        eps: 0.02,
        feature: 0,
        tau: 0.0,
        output_weights: weights,
        increasing: true,
    };
    let _ = verify_monotonicity(&mono, Method::Raven, &config);

    let wall_millis = start.elapsed().as_secs_f64() * 1e3;
    let deltas: Vec<(String, Json)> = counters()
        .iter()
        .zip(&before)
        .map(|((name, c), &b)| (name.to_string(), Json::from((c.get() - b) as f64)))
        .collect();
    let phases: Vec<(String, Json)> = [
        ("margins", &raven::metrics::PHASE_MARGINS_SECONDS),
        ("analysis", &raven::metrics::PHASE_ANALYSIS_SECONDS),
        ("diffpoly", &raven::metrics::PHASE_DIFFPOLY_SECONDS),
        ("encode", &raven::metrics::PHASE_ENCODE_SECONDS),
        ("solve", &raven::metrics::PHASE_SOLVE_SECONDS),
    ]
    .iter()
    .map(|(name, h)| (name.to_string(), Json::from(1e3 * h.sum())))
    .collect();

    // Certificate overhead, measured after the counter/phase snapshots
    // above so the pivot-regression gate keeps comparing like with like:
    // re-run the hot UAP batch and the monotonicity query certified, and
    // record serialized certificate size plus exact-replay time.
    let certificates: Vec<(String, Json)> = [
        (
            "uap",
            raven::verify_uap_certified(&hot, Method::Raven, &config).1,
        ),
        (
            "mono",
            raven::verify_monotonicity_certified(&mono, Method::Raven, &config).1,
        ),
    ]
    .into_iter()
    .filter_map(|(name, cert)| {
        let cert = cert?;
        let bytes = cert.to_json().to_string().len();
        let replay_start = Instant::now();
        let replay = raven_check::check_certificate(&cert).expect("bench certificate replays");
        let replay_millis = replay_start.elapsed().as_secs_f64() * 1e3;
        Some((
            name.to_string(),
            Json::obj([
                ("bytes", Json::from(bytes)),
                ("replay_millis", Json::from(replay_millis)),
                ("tier", Json::from(replay.tier.as_str())),
                ("lp_checked", Json::from(replay.lp_checked)),
                ("neurons_checked", Json::from(replay.neurons_checked)),
            ]),
        ))
    })
    .collect();

    // Fleet dispatch round trip, also outside the pivot-gate window: an
    // in-process server with a fleet listener, one in-process worker, and
    // a handful of distinct fleet-eligible queries (distinct eps so none
    // is served from the result cache). Records the certificate-gated
    // dispatch RTT and the remote-vs-local split.
    let fleet = {
        use raven_serve::fleet::{run_worker, WorkerOptions};
        use raven_serve::registry::ModelRegistry;
        use raven_serve::{metrics as serve_m, Server, ServerConfig};
        use std::io::{Read, Write};
        use std::net::TcpStream;
        use std::sync::atomic::{AtomicBool, Ordering};

        static WORKER_STOP: AtomicBool = AtomicBool::new(false);

        let mut registry = ModelRegistry::new();
        registry.add_network("fc-small", model.net.clone());
        let mut worker_registry = ModelRegistry::new();
        worker_registry.add_network("fc-small", model.net.clone());

        let server_config = ServerConfig {
            fleet_addr: Some("127.0.0.1:0".to_string()),
            job_threads: threads,
            // The bench measures dispatch RTT, so dispatch must happen:
            // disable the saturation gate (an idle bench pool would
            // otherwise keep every query local).
            fleet: raven_serve::fleet::FleetConfig {
                when_saturated: false,
                ..raven_serve::fleet::FleetConfig::default()
            },
            ..ServerConfig::default()
        };
        let server = Server::bind(&server_config, registry).expect("bind fleet bench server");
        let addr = server.local_addr().expect("server addr");
        let fleet_addr = server.fleet_addr().expect("fleet addr");
        let shutdown = server.shutdown_handle();
        let server_thread = std::thread::spawn(move || server.run());
        let worker_thread = std::thread::spawn(move || {
            let opts = WorkerOptions {
                connect: fleet_addr.to_string(),
                name: "bench-worker".to_string(),
                registry: worker_registry,
                job_threads: threads,
                reconnect: std::time::Duration::from_millis(100),
                cache_capacity: 64,
                once: true,
            };
            let _ = run_worker(&opts, &WORKER_STOP);
        });

        let (inputs, labels) = uap_batches(&model, 3, 1).swap_remove(0);
        let inputs_json = Json::Arr(
            inputs
                .iter()
                .map(|x| Json::Arr(x.iter().map(|&v| Json::from(v)).collect()))
                .collect(),
        );
        let labels_json = Json::Arr(labels.iter().map(|&l| Json::from(l)).collect());
        let before = (
            serve_m::FLEET_DISPATCH_SECONDS.sum(),
            serve_m::FLEET_REMOTE_SOLVES.get(),
            serve_m::FLEET_LOCAL_FALLBACKS.get(),
        );
        let queries = 4usize;
        let mut rtt_wall_millis = 0.0;
        for i in 0..queries {
            let body = Json::obj([
                ("model", Json::from("fc-small")),
                ("eps", Json::from(0.03 + i as f64 * 1e-4)),
                ("method", Json::from("raven")),
                ("inputs", inputs_json.clone()),
                ("labels", labels_json.clone()),
            ])
            .to_string();
            let rtt_start = Instant::now();
            let mut stream = TcpStream::connect(addr).expect("connect bench server");
            write!(
                stream,
                "POST /v1/verify/uap HTTP/1.1\r\nHost: raven\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            )
            .expect("send fleet query");
            let mut response = String::new();
            stream.read_to_string(&mut response).expect("read verdict");
            assert!(
                response.starts_with("HTTP/1.1 200"),
                "fleet bench query failed: {response}"
            );
            rtt_wall_millis += rtt_start.elapsed().as_secs_f64() * 1e3;
        }
        shutdown.shutdown();
        WORKER_STOP.store(true, Ordering::SeqCst);
        server_thread.join().expect("server thread");
        worker_thread.join().expect("worker thread");

        let remote = serve_m::FLEET_REMOTE_SOLVES.get() - before.1;
        let local = serve_m::FLEET_LOCAL_FALLBACKS.get() - before.2;
        let dispatch_millis = 1e3 * (serve_m::FLEET_DISPATCH_SECONDS.sum() - before.0);
        Json::obj([
            ("queries", Json::from(queries)),
            ("remote_solves", Json::from(remote as f64)),
            ("local_fallbacks", Json::from(local as f64)),
            ("dispatch_rtt_millis", Json::from(dispatch_millis)),
            (
                "client_rtt_millis",
                Json::from(rtt_wall_millis / queries as f64),
            ),
        ])
    };

    // Shard-count vs wall-clock: the same fleet-eligible UAP query served
    // whole (1 shard) and input-split across 2 and 4 single-threaded
    // in-process workers, with saturation gating off so every run
    // dispatches. The column shows what sharding buys (or costs — the
    // fc-small query is small enough that dispatch overhead can win) at
    // each width; verdict bytes are identical at every width by
    // construction, so only the timing varies.
    let fleet_shards = {
        use raven_serve::fleet::{run_worker, FleetConfig, WorkerOptions};
        use raven_serve::registry::ModelRegistry;
        use raven_serve::{metrics as serve_m, Server, ServerConfig};
        use std::io::{Read, Write};
        use std::net::TcpStream;
        use std::sync::atomic::{AtomicBool, Ordering};

        let (inputs, labels) = uap_batches(&model, 3, 1).swap_remove(0);
        let body = Json::obj([
            ("model", Json::from("fc-small")),
            ("eps", Json::from(0.03)),
            ("method", Json::from("raven")),
            (
                "inputs",
                Json::Arr(
                    inputs
                        .iter()
                        .map(|x| Json::Arr(x.iter().map(|&v| Json::from(v)).collect()))
                        .collect(),
                ),
            ),
            (
                "labels",
                Json::Arr(labels.iter().map(|&l| Json::from(l)).collect()),
            ),
        ])
        .to_string();

        let mut rows = Vec::new();
        let mut reference: Option<String> = None;
        for shards in [1u32, 2, 4] {
            let mut registry = ModelRegistry::new();
            registry.add_network("fc-small", model.net.clone());
            let server_config = ServerConfig {
                fleet_addr: Some("127.0.0.1:0".to_string()),
                job_threads: 1,
                fleet: FleetConfig {
                    shards,
                    when_saturated: false,
                    ..FleetConfig::default()
                },
                ..ServerConfig::default()
            };
            let server = Server::bind(&server_config, registry).expect("bind shard bench server");
            let addr = server.local_addr().expect("server addr");
            let fleet_addr = server.fleet_addr().expect("fleet addr");
            let shutdown = server.shutdown_handle();
            let stop = AtomicBool::new(false);
            let before_remote = serve_m::FLEET_SHARD_REMOTE.get();
            let before_fallbacks = serve_m::FLEET_SHARD_FALLBACKS.get();
            let mut wall = 0.0;
            let mut verdict = String::new();
            std::thread::scope(|scope| {
                scope.spawn(|| server.run());
                for w in 0..shards {
                    let mut worker_registry = ModelRegistry::new();
                    worker_registry.add_network("fc-small", model.net.clone());
                    let opts = WorkerOptions {
                        connect: fleet_addr.to_string(),
                        name: format!("shard-bench-{w}"),
                        registry: worker_registry,
                        job_threads: 1,
                        reconnect: std::time::Duration::from_millis(50),
                        cache_capacity: 64,
                        once: true,
                    };
                    let stop = &stop;
                    scope.spawn(move || {
                        let _ = run_worker(&opts, stop);
                    });
                }
                // Every shard should find a distinct worker: wait for the
                // full complement to register before timing the query.
                let deadline = Instant::now() + std::time::Duration::from_secs(10);
                loop {
                    let mut stream = TcpStream::connect(addr).expect("connect healthz");
                    write!(stream, "GET /v1/healthz HTTP/1.1\r\nHost: raven\r\n\r\n")
                        .expect("send healthz");
                    let mut response = String::new();
                    stream.read_to_string(&mut response).expect("read healthz");
                    let connected = response.matches("\"connected\":true").count() as u32;
                    if connected >= shards {
                        break;
                    }
                    assert!(
                        Instant::now() < deadline,
                        "only {connected}/{shards} bench workers connected"
                    );
                    std::thread::sleep(std::time::Duration::from_millis(10));
                }
                let t0 = Instant::now();
                let mut stream = TcpStream::connect(addr).expect("connect shard bench server");
                write!(
                    stream,
                    "POST /v1/verify/uap HTTP/1.1\r\nHost: raven\r\nContent-Length: {}\r\n\r\n{body}",
                    body.len()
                )
                .expect("send shard query");
                let mut response = String::new();
                stream.read_to_string(&mut response).expect("read verdict");
                assert!(
                    response.starts_with("HTTP/1.1 200"),
                    "shard bench query failed: {response}"
                );
                wall = t0.elapsed().as_secs_f64() * 1e3;
                let reply =
                    Json::parse(response.split("\r\n\r\n").nth(1).unwrap_or("")).expect("verdict");
                verdict = reply.get("result").expect("result").to_string();
                shutdown.shutdown();
                stop.store(true, Ordering::SeqCst);
            });
            // Byte-identity across widths is the tentpole's contract;
            // assert it here too so the bench doubles as a smoke check.
            match &reference {
                None => reference = Some(verdict),
                Some(expected) => assert_eq!(&verdict, expected, "shards={shards} changed bytes"),
            }
            rows.push(Json::obj([
                ("shards", Json::from(f64::from(shards))),
                ("workers", Json::from(f64::from(shards))),
                ("wall_millis", Json::from(wall)),
                (
                    "shard_remote",
                    Json::from((serve_m::FLEET_SHARD_REMOTE.get() - before_remote) as f64),
                ),
                (
                    "shard_fallbacks",
                    Json::from((serve_m::FLEET_SHARD_FALLBACKS.get() - before_fallbacks) as f64),
                ),
            ]));
        }
        Json::Arr(rows)
    };

    // Distributed-tracing overhead, also outside the pivot-gate window:
    // the same moderate-ε UAP batch solved with and without a per-request
    // trace context buffering spans. Tracing is observe-only, so the only
    // cost is the per-record buffering — this column keeps it honest.
    let tracing = {
        let (inputs, labels) = uap_batches(&model, 3, 1).swap_remove(0);
        let problem = UapProblem {
            plan: plan.clone(),
            inputs,
            labels,
            eps,
        };
        let reps = 3usize;
        let t_off = Instant::now();
        for _ in 0..reps {
            let _ = verify_uap(&problem, Method::Raven, &config);
        }
        let untraced_millis = t_off.elapsed().as_secs_f64() * 1e3 / reps as f64;
        let mut spans_buffered = 0u64;
        let t_on = Instant::now();
        for _ in 0..reps {
            let ctx = raven_obs::begin_trace(raven_obs::mint_trace_id(), raven_obs::next_span_id());
            raven_obs::set_current_trace(Some(ctx));
            let _ = verify_uap(&problem, Method::Raven, &config);
            raven_obs::set_current_trace(None);
            spans_buffered += raven_obs::end_trace(ctx).records.len() as u64;
        }
        let traced_millis = t_on.elapsed().as_secs_f64() * 1e3 / reps as f64;
        Json::obj([
            ("reps", Json::from(reps)),
            ("untraced_millis", Json::from(untraced_millis)),
            ("traced_millis", Json::from(traced_millis)),
            (
                "overhead_millis",
                Json::from(traced_millis - untraced_millis),
            ),
            (
                "spans_per_run",
                Json::from(spans_buffered as f64 / reps as f64),
            ),
        ])
    };

    let report = Json::obj([
        ("bench", Json::from("obs")),
        (
            "workload",
            Json::obj([
                ("model", Json::from("fc-small/pgd")),
                ("uap_batches", Json::from(2usize)),
                ("k", Json::from(3usize)),
                ("eps", Json::from(eps)),
                ("hot_eps", Json::from(hot_eps)),
                ("hot_k", Json::from(4usize)),
                ("targeted_labels", Json::from(odim)),
                ("mono_queries", Json::from(1usize)),
                ("threads", Json::from(threads)),
            ]),
        ),
        ("wall_millis", Json::from(wall_millis)),
        ("counters", Json::Obj(deltas)),
        ("phase_millis", Json::Obj(phases)),
        ("certificates", Json::Obj(certificates)),
        ("fleet", fleet),
        ("fleet_shards", fleet_shards),
        ("tracing", tracing),
    ]);
    std::fs::write(&out, format!("{report}\n")).expect("write report");
    println!("wrote {out} ({wall_millis:.0} ms workload)");

    if let Some(baseline_path) = check {
        let text = std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| panic!("read baseline {baseline_path}: {e}"));
        let baseline = Json::parse(&text).expect("baseline parses");
        let base = pivot_total(&baseline);
        let now = pivot_total(&report);
        let limit = base * 1.2;
        println!("pivot check: measured {now:.0} vs baseline {base:.0} (limit {limit:.0})");
        if now > limit {
            eprintln!(
                "FAIL: total pivots regressed by more than 20% \
                 ({now:.0} > {limit:.0}); rerun with --out to refresh the \
                 baseline if the regression is intentional"
            );
            std::process::exit(1);
        }
    }
}
