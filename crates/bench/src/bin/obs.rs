//! Emits `BENCH_obs.json`: wall time *and* solver counters for a fixed
//! verification workload.
//!
//! Wall time alone cannot distinguish "the solver got faster" from "the
//! solver did less work"; the `raven-obs` counters can. This bench runs a
//! fixed UAP + targeted-UAP + monotonicity workload on the fc-small zoo
//! model, snapshots the solver/analysis counters before and after, and
//! records the deltas next to the timing — so a perf regression (or win)
//! in a future change decomposes into pivots, dual pivots, warm starts,
//! B&B nodes, presolve eliminations, and per-phase seconds.
//!
//! The high-ε batch and the per-label targeted queries are sized so the
//! spec MILP actually branches: `milp_nodes`, `lp_dual_pivots`, and
//! `lp_warm_starts` are all non-zero, which is what makes the report a
//! meaningful guard for the branch-and-bound hot path.
//!
//! Usage: `cargo run -p raven-bench --release --bin obs -- [--out FILE]
//! [--threads n] [--check BASELINE]` (default output `BENCH_obs.json`).
//! With `--check`, the freshly measured pivot total (primal + dual) is
//! compared against the committed baseline and the process exits non-zero
//! on a >20% regression — wired into `scripts/tier1.sh`.

use raven::{
    verify_monotonicity, verify_targeted_uap_all, verify_uap, Method, MonotonicityProblem,
    RavenConfig, UapProblem,
};
use raven_bench::models::{fc_model, uap_batches, Training};
use raven_json::Json;
use raven_obs::Counter;
use std::time::Instant;

/// The counters recorded in the report, with their JSON keys.
fn counters() -> Vec<(&'static str, &'static Counter)> {
    use raven::metrics as core_m;
    use raven_lp::metrics as lp_m;
    vec![
        ("simplex_pivots", &lp_m::SIMPLEX_PIVOTS),
        ("lp_dual_pivots", &lp_m::LP_DUAL_PIVOTS),
        ("lp_warm_starts", &lp_m::LP_WARM_STARTS),
        ("lp_solves", &lp_m::LP_SOLVES),
        ("presolve_rows_removed", &lp_m::PRESOLVE_ROWS_REMOVED),
        (
            "presolve_bounds_tightened",
            &lp_m::PRESOLVE_BOUNDS_TIGHTENED,
        ),
        ("milp_nodes", &lp_m::MILP_NODES),
        ("milp_nodes_pruned", &lp_m::MILP_NODES_PRUNED),
        ("milp_incumbent_updates", &lp_m::MILP_INCUMBENT_UPDATES),
        ("interval_layers", &raven_interval::metrics::LAYERS),
        (
            "deeppoly_relaxed_neurons",
            &raven_deeppoly::metrics::RELAXED_NEURONS,
        ),
        (
            "deeppoly_split_neurons",
            &raven_deeppoly::metrics::SPLIT_NEURONS,
        ),
        (
            "diffpoly_pair_analyses",
            &raven_diffpoly::metrics::PAIR_ANALYSES,
        ),
        ("uap_runs", &core_m::UAP_RUNS),
        ("mono_runs", &core_m::MONO_RUNS),
    ]
}

/// Total simplex work in a report: primal pivots plus dual (warm-start)
/// pivots. Old baselines predate the dual counter; a missing key reads 0.
fn pivot_total(report: &Json) -> f64 {
    let counter = |key: &str| {
        report
            .get("counters")
            .and_then(|c| c.get(key))
            .and_then(|v| v.as_f64())
            .unwrap_or(0.0)
    };
    counter("simplex_pivots") + counter("lp_dual_pivots")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let threads = raven_bench::threads_arg(&args);
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let out = flag("--out").unwrap_or_else(|| "BENCH_obs.json".to_string());
    let check = flag("--check");

    // Phase timings need the clock-reading side of telemetry.
    raven_obs::set_enabled(true);
    let model = fc_model("fc-small", Training::Pgd);
    let plan = model.net.to_plan();
    let config = RavenConfig {
        threads,
        ..RavenConfig::default()
    };

    let before: Vec<u64> = counters().iter().map(|(_, c)| c.get()).collect();
    let start = Instant::now();

    // Fixed workload, three parts:
    //
    // 1. Two relational UAP batches (k=3) at a moderate ε — covers
    //    DeepPoly, DiffPoly, and the relational LP, usually without
    //    indicators.
    let eps = 0.03;
    for (inputs, labels) in uap_batches(&model, 3, 2) {
        let problem = UapProblem {
            plan: plan.clone(),
            inputs,
            labels,
            eps,
        };
        let _ = verify_uap(&problem, Method::Raven, &config);
    }
    // 2. One high-ε batch (k=4) where individual robustness fails: the
    //    spec MILP branches, exercising the dual-simplex warm starts on
    //    the B&B hot path, plus the per-label targeted queries that share
    //    one relaxation encoding and one basis cache across all labels.
    let hot_eps = 0.45;
    let (inputs, labels) = uap_batches(&model, 4, 3).swap_remove(2);
    let hot = UapProblem {
        plan: plan.clone(),
        inputs,
        labels,
        eps: hot_eps,
    };
    let _ = verify_uap(&hot, Method::Raven, &config);
    let all_labels: Vec<usize> = (0..plan.output_dim()).collect();
    let _ = verify_targeted_uap_all(&hot, &all_labels, Method::Raven, &config);
    // 3. One LP-tier monotonicity query.
    let dim = plan.input_dim();
    let odim = plan.output_dim();
    let mut weights = vec![0.0; odim];
    weights[0] = -1.0;
    weights[odim - 1] = 1.0;
    let mono = MonotonicityProblem {
        plan: plan.clone(),
        center: vec![0.5; dim],
        eps: 0.02,
        feature: 0,
        tau: 0.0,
        output_weights: weights,
        increasing: true,
    };
    let _ = verify_monotonicity(&mono, Method::Raven, &config);

    let wall_millis = start.elapsed().as_secs_f64() * 1e3;
    let deltas: Vec<(String, Json)> = counters()
        .iter()
        .zip(&before)
        .map(|((name, c), &b)| (name.to_string(), Json::from((c.get() - b) as f64)))
        .collect();
    let phases: Vec<(String, Json)> = [
        ("margins", &raven::metrics::PHASE_MARGINS_SECONDS),
        ("analysis", &raven::metrics::PHASE_ANALYSIS_SECONDS),
        ("diffpoly", &raven::metrics::PHASE_DIFFPOLY_SECONDS),
        ("encode", &raven::metrics::PHASE_ENCODE_SECONDS),
        ("solve", &raven::metrics::PHASE_SOLVE_SECONDS),
    ]
    .iter()
    .map(|(name, h)| (name.to_string(), Json::from(1e3 * h.sum())))
    .collect();

    // Certificate overhead, measured after the counter/phase snapshots
    // above so the pivot-regression gate keeps comparing like with like:
    // re-run the hot UAP batch and the monotonicity query certified, and
    // record serialized certificate size plus exact-replay time.
    let certificates: Vec<(String, Json)> = [
        (
            "uap",
            raven::verify_uap_certified(&hot, Method::Raven, &config).1,
        ),
        (
            "mono",
            raven::verify_monotonicity_certified(&mono, Method::Raven, &config).1,
        ),
    ]
    .into_iter()
    .filter_map(|(name, cert)| {
        let cert = cert?;
        let bytes = cert.to_json().to_string().len();
        let replay_start = Instant::now();
        let replay = raven_check::check_certificate(&cert).expect("bench certificate replays");
        let replay_millis = replay_start.elapsed().as_secs_f64() * 1e3;
        Some((
            name.to_string(),
            Json::obj([
                ("bytes", Json::from(bytes)),
                ("replay_millis", Json::from(replay_millis)),
                ("tier", Json::from(replay.tier.as_str())),
                ("lp_checked", Json::from(replay.lp_checked)),
                ("neurons_checked", Json::from(replay.neurons_checked)),
            ]),
        ))
    })
    .collect();

    let report = Json::obj([
        ("bench", Json::from("obs")),
        (
            "workload",
            Json::obj([
                ("model", Json::from("fc-small/pgd")),
                ("uap_batches", Json::from(2usize)),
                ("k", Json::from(3usize)),
                ("eps", Json::from(eps)),
                ("hot_eps", Json::from(hot_eps)),
                ("hot_k", Json::from(4usize)),
                ("targeted_labels", Json::from(odim)),
                ("mono_queries", Json::from(1usize)),
                ("threads", Json::from(threads)),
            ]),
        ),
        ("wall_millis", Json::from(wall_millis)),
        ("counters", Json::Obj(deltas)),
        ("phase_millis", Json::Obj(phases)),
        ("certificates", Json::Obj(certificates)),
    ]);
    std::fs::write(&out, format!("{report}\n")).expect("write report");
    println!("wrote {out} ({wall_millis:.0} ms workload)");

    if let Some(baseline_path) = check {
        let text = std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| panic!("read baseline {baseline_path}: {e}"));
        let baseline = Json::parse(&text).expect("baseline parses");
        let base = pivot_total(&baseline);
        let now = pivot_total(&report);
        let limit = base * 1.2;
        println!("pivot check: measured {now:.0} vs baseline {base:.0} (limit {limit:.0})");
        if now > limit {
            eprintln!(
                "FAIL: total pivots regressed by more than 20% \
                 ({now:.0} > {limit:.0}); rerun with --out to refresh the \
                 baseline if the regression is intentional"
            );
            std::process::exit(1);
        }
    }
}
