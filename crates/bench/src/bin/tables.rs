//! Regenerates the evaluation tables T1–T5.
//!
//! Usage: `cargo run -p raven-bench --release --bin tables -- [--quick]
//! [--threads n] [t1 t2 ...|all]` (`--threads 0` uses all cores; default 1).

use raven_bench::tables::{run, Scope};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let scope = if quick { Scope::Quick } else { Scope::Full };
    let threads = raven_bench::threads_arg(&args);
    let ids = raven_bench::positional_args(&args);
    let ids: Vec<&str> = ids.iter().map(String::as_str).collect();
    let ids = if ids.is_empty() || ids.contains(&"all") {
        vec!["t1", "t2", "t3", "t4", "t5", "t6", "t7"]
    } else {
        ids
    };
    for table in run(&ids, scope, threads) {
        println!("{}", table.to_markdown());
    }
}
