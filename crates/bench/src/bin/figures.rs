//! Regenerates the evaluation figures F1–F6 as CSV series.
//!
//! Usage: `cargo run -p raven-bench --release --bin figures -- [--threads n]
//! [f1 f2 ...|all]` (`--threads 0` uses all cores; default 1).

use raven_bench::figures::run;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let threads = raven_bench::threads_arg(&args);
    let ids = raven_bench::positional_args(&args);
    let ids: Vec<&str> = ids.iter().map(String::as_str).collect();
    let ids = if ids.is_empty() || ids.contains(&"all") {
        vec!["f1", "f2", "f3", "f4", "f5", "f6"]
    } else {
        ids
    };
    for fig in run(&ids, threads) {
        println!("{}", fig.to_csv());
    }
}
