//! Regenerates the evaluation figures F1–F4 as CSV series.
//!
//! Usage: `cargo run -p raven-bench --release --bin figures -- [f1 f2 ...|all]`

use raven_bench::figures::run;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let ids: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let ids = if ids.is_empty() || ids.contains(&"all") {
        vec!["f1", "f2", "f3", "f4", "f5", "f6"]
    } else {
        ids
    };
    for fig in run(&ids) {
        println!("{}", fig.to_csv());
    }
}
