//! Minimal wall-clock micro-benchmark harness.
//!
//! The workspace builds with no registry dependencies, so the micro-bench
//! binaries under `benches/` use this helper instead of Criterion: a short
//! warm-up, a fixed number of timed iterations, and a median-of-samples
//! report on stdout. Invoke with `cargo bench -p raven-bench`.

use std::time::{Duration, Instant};

/// Times `f` and prints `name: median per-iteration time (min … max)`.
///
/// Runs `samples` batches of `iters` iterations each after one warm-up
/// batch; reports the median batch, which is robust to scheduler noise.
pub fn bench<F: FnMut()>(name: &str, samples: usize, iters: usize, mut f: F) {
    assert!(samples > 0 && iters > 0, "bench: empty measurement plan");
    for _ in 0..iters {
        f();
    }
    let mut per_iter: Vec<Duration> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            start.elapsed() / iters as u32
        })
        .collect();
    per_iter.sort_unstable();
    let median = per_iter[per_iter.len() / 2];
    let min = per_iter[0];
    let max = per_iter[per_iter.len() - 1];
    println!("{name:<40} {median:>12.2?}  ({min:.2?} … {max:.2?})");
}
