//! Table experiments T1–T5 (see `DESIGN.md` for the experiment index).

use crate::models::{
    conv_model, credit_dataset, credit_model, fc_model, uap_batches, BenchModel, Training, FC_SIZES,
};
use crate::report::{ms, pct, Table};
use raven::{
    verify_monotonicity, verify_uap, Method, MonotonicityProblem, RavenConfig, UapProblem,
};

/// How much of the sweep to run: `Quick` keeps the harness under a minute
/// for smoke tests; `Full` reproduces the recorded tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scope {
    /// Small sweep (fc-small, fewer ε values, one batch).
    Quick,
    /// The full recorded sweep.
    Full,
}

impl Scope {
    fn fc_sizes(self) -> &'static [&'static str] {
        match self {
            Scope::Quick => &FC_SIZES[..1],
            Scope::Full => &FC_SIZES,
        }
    }

    fn eps_values(self) -> &'static [f64] {
        match self {
            Scope::Quick => &[0.06, 0.1],
            Scope::Full => &[0.06, 0.09, 0.11],
        }
    }

    fn batches(self) -> usize {
        match self {
            Scope::Quick => 1,
            Scope::Full => 2,
        }
    }
}

/// Averaged verification outcome for one (model, ε, method) cell.
struct Cell {
    accuracy: f64,
    millis: f64,
}

fn uap_cell(
    model: &BenchModel,
    eps: f64,
    k: usize,
    batches: usize,
    method: Method,
    threads: usize,
) -> Cell {
    let config = RavenConfig {
        threads,
        ..RavenConfig::default()
    };
    let plan = model.net.to_plan();
    let mut acc = 0.0;
    let mut millis = 0.0;
    let groups = uap_batches(model, k, batches);
    assert!(!groups.is_empty(), "no correctly classified batches");
    for (inputs, labels) in &groups {
        let problem = UapProblem {
            plan: plan.clone(),
            inputs: inputs.clone(),
            labels: labels.clone(),
            eps,
        };
        let res = verify_uap(&problem, method, &config);
        acc += res.worst_case_accuracy;
        millis += res.solve_millis;
    }
    Cell {
        accuracy: acc / groups.len() as f64,
        millis: millis / groups.len() as f64,
    }
}

/// T1: worst-case UAP accuracy on the fully-connected grid.
///
/// Each (network, training) block trains its own model and is independent
/// of the others, as is every (ε, method) cell inside a block — both levels
/// fan out across `threads` workers, with rows assembled in the fixed grid
/// order so the table is identical for any thread count.
pub fn t1(scope: Scope, threads: usize) -> Table {
    let mut table = Table::new(
        "T1: certified worst-case UAP accuracy (%), FC networks, k=3",
        &[
            "net", "train", "eps", "box", "zono", "deeppoly", "io-lp", "raven", "raven ms",
        ],
    );
    let mut combos: Vec<(&str, Training)> = Vec::new();
    for &size in scope.fc_sizes() {
        for training in [Training::Standard, Training::Pgd] {
            combos.push((size, training));
        }
    }
    let blocks: Vec<Vec<Vec<String>>> = raven::par::map(threads, &combos, |&(size, training)| {
        let model = fc_model(size, training);
        scope
            .eps_values()
            .iter()
            .map(|&eps| {
                let cells: Vec<Cell> = raven::par::map(threads, &Method::all(), |&m| {
                    uap_cell(&model, eps, 3, scope.batches(), m, threads)
                });
                vec![
                    size.to_string(),
                    training.name().to_string(),
                    format!("{eps}"),
                    pct(cells[0].accuracy),
                    pct(cells[1].accuracy),
                    pct(cells[2].accuracy),
                    pct(cells[3].accuracy),
                    pct(cells[4].accuracy),
                    ms(cells[4].millis),
                ]
            })
            .collect()
    });
    for block in blocks {
        for row in block {
            table.push_row(row);
        }
    }
    table
}

/// T2: worst-case UAP accuracy on the convolutional network.
pub fn t2(scope: Scope, threads: usize) -> Table {
    let mut table = Table::new(
        "T2: certified worst-case UAP accuracy (%), conv network, k=3",
        &[
            "net", "train", "eps", "box", "zono", "deeppoly", "io-lp", "raven", "raven ms",
        ],
    );
    let trainings = [Training::Standard, Training::Pgd];
    let blocks: Vec<Vec<Vec<String>>> = raven::par::map(threads, &trainings, |&training| {
        let model = conv_model(training);
        scope
            .eps_values()
            .iter()
            .map(|&eps| {
                let cells: Vec<Cell> = raven::par::map(threads, &Method::all(), |&m| {
                    uap_cell(&model, eps, 3, scope.batches(), m, threads)
                });
                vec![
                    "conv-small".to_string(),
                    training.name().to_string(),
                    format!("{eps}"),
                    pct(cells[0].accuracy),
                    pct(cells[1].accuracy),
                    pct(cells[2].accuracy),
                    pct(cells[3].accuracy),
                    pct(cells[4].accuracy),
                    ms(cells[4].millis),
                ]
            })
            .collect()
    });
    for block in blocks {
        for row in block {
            table.push_row(row);
        }
    }
    table
}

/// T3: certified worst-case hamming distance of predicted label strings.
pub fn t3(scope: Scope, threads: usize) -> Table {
    let k = 4;
    let mut table = Table::new(
        format!(
            "T3: certified worst-case hamming distance (lower is tighter), \
             fc-small, string length k={k}"
        ),
        &["train", "eps", "box", "zono", "deeppoly", "io-lp", "raven"],
    );
    let config = RavenConfig {
        threads,
        ..RavenConfig::default()
    };
    for training in [Training::Standard, Training::Pgd] {
        let model = fc_model("fc-small", training);
        for &eps in scope.eps_values() {
            let plan = model.net.to_plan();
            let groups = uap_batches(&model, k, scope.batches());
            let mut row = vec![training.name().to_string(), format!("{eps}")];
            // One independent column per method.
            let hams: Vec<f64> = raven::par::map(threads, &Method::all(), |&method| {
                let mut hamming = 0.0;
                for (inputs, labels) in &groups {
                    let problem = UapProblem {
                        plan: plan.clone(),
                        inputs: inputs.clone(),
                        labels: labels.clone(),
                        eps,
                    };
                    hamming += verify_uap(&problem, method, &config).worst_case_hamming;
                }
                hamming / groups.len() as f64
            });
            for h in hams {
                row.push(format!("{h:.2}"));
            }
            table.push_row(row);
        }
    }
    table
}

/// T4: monotonicity certification rate on the tabular model.
pub fn t4(scope: Scope, threads: usize) -> Table {
    let model = credit_model();
    let (_, spec) = credit_dataset();
    let num_inputs = match scope {
        Scope::Quick => 4,
        Scope::Full => 10,
    };
    let mut table = Table::new(
        "T4: monotonicity certified (% of inputs), credit-sigmoid",
        &[
            "feature", "dir", "tau", "box", "zono", "deeppoly", "io-lp", "raven",
        ],
    );
    let taus: &[f64] = match scope {
        Scope::Quick => &[0.05],
        Scope::Full => &[0.05, 0.1],
    };
    let plan = model.net.to_plan();
    let features: Vec<(usize, bool)> = spec
        .increasing
        .iter()
        .map(|&f| (f, true))
        .chain(spec.decreasing.iter().map(|&f| (f, false)))
        .collect();
    for (feature, increasing) in features {
        for &tau in taus {
            let mut row = vec![
                format!("x{feature}"),
                if increasing { "inc" } else { "dec" }.to_string(),
                format!("{tau}"),
            ];
            let rates: Vec<f64> = raven::par::map(threads, &Method::all(), |&method| {
                let mut certified = 0usize;
                for x in model.test.inputs.iter().take(num_inputs) {
                    let problem = MonotonicityProblem {
                        plan: plan.clone(),
                        center: x.clone(),
                        eps: 0.01,
                        feature,
                        tau,
                        output_weights: vec![-1.0, 1.0],
                        increasing,
                    };
                    if verify_monotonicity(&problem, method, &RavenConfig::default()).verified {
                        certified += 1;
                    }
                }
                certified as f64 / num_inputs as f64
            });
            for rate in rates {
                row.push(pct(rate));
            }
            table.push_row(row);
        }
    }
    table
}

/// T5: average verification time per method.
pub fn t5(scope: Scope, threads: usize) -> Table {
    let mut table = Table::new(
        "T5: average verification time per UAP instance (ms), k=3, eps=0.09",
        &[
            "net",
            "train",
            "box",
            "zono",
            "deeppoly",
            "io-lp",
            "raven",
            "raven rows",
        ],
    );
    let config = RavenConfig {
        threads,
        ..RavenConfig::default()
    };
    for &size in scope.fc_sizes() {
        for training in [Training::Standard, Training::Pgd] {
            let model = fc_model(size, training);
            let plan = model.net.to_plan();
            let groups = uap_batches(&model, 3, scope.batches());
            // `(total millis, max LP rows)` per method, methods in parallel.
            let per_method: Vec<(f64, usize)> = raven::par::map(threads, &Method::all(), |&m| {
                let mut millis = 0.0;
                let mut rows = 0usize;
                for (inputs, labels) in &groups {
                    let problem = UapProblem {
                        plan: plan.clone(),
                        inputs: inputs.clone(),
                        labels: labels.clone(),
                        eps: 0.09,
                    };
                    let res = verify_uap(&problem, m, &config);
                    millis += res.solve_millis;
                    rows = rows.max(res.lp_rows);
                }
                (millis, rows)
            });
            let n = groups.len() as f64;
            table.push_row(vec![
                size.to_string(),
                training.name().to_string(),
                ms(per_method[0].0 / n),
                ms(per_method[1].0 / n),
                ms(per_method[2].0 / n),
                ms(per_method[3].0 / n),
                ms(per_method[4].0 / n),
                per_method[4].1.to_string(),
            ]);
        }
    }
    table
}

/// T6: activation-function generality — the same UAP sweep across all five
/// supported activations on the fc-small architecture.
pub fn t6(scope: Scope, threads: usize) -> Table {
    use raven_nn::ActKind;
    let mut table = Table::new(
        "T6: certified worst-case UAP accuracy (%) by activation, fc-small/std, k=3",
        &[
            "activation",
            "train acc",
            "eps",
            "deeppoly",
            "io-lp",
            "raven",
        ],
    );
    let eps_values: &[f64] = match scope {
        Scope::Quick => &[0.06],
        Scope::Full => &[0.06, 0.1],
    };
    for kind in ActKind::all() {
        let model = crate::models::act_model(kind);
        for &eps in eps_values {
            let methods = [Method::DeepPolyIndividual, Method::IoLp, Method::Raven];
            let cells: Vec<Cell> = raven::par::map(threads, &methods, |&m| {
                uap_cell(&model, eps, 3, 1, m, threads)
            });
            table.push_row(vec![
                kind.to_string(),
                pct(model.train_accuracy),
                format!("{eps}"),
                pct(cells[0].accuracy),
                pct(cells[1].accuracy),
                pct(cells[2].accuracy),
            ]);
        }
    }
    table
}

/// T7: targeted UAP — certified maximum number of executions a shared
/// perturbation can force into a designated class.
pub fn t7(scope: Scope, threads: usize) -> Table {
    use raven::{verify_targeted_uap, TargetedUapProblem};
    let mut table = Table::new(
        "T7: targeted UAP — certified max executions forced to target, fc-small, k=4",
        &["train", "eps", "target", "deeppoly", "raven"],
    );
    let eps_values: &[f64] = match scope {
        Scope::Quick => &[0.1],
        Scope::Full => &[0.08, 0.11],
    };
    let config = RavenConfig {
        threads,
        ..RavenConfig::default()
    };
    for training in [Training::Standard, Training::Pgd] {
        let model = fc_model("fc-small", training);
        let plan = model.net.to_plan();
        let (inputs, labels) = uap_batches(&model, 4, 1).remove(0);
        // Every (ε, counter-label) LP solve is independent — fan them out.
        let mut cases: Vec<(f64, usize)> = Vec::new();
        for &eps in eps_values {
            for target in [0usize, 1] {
                cases.push((eps, target));
            }
        }
        let rows: Vec<Vec<String>> = raven::par::map(threads, &cases, |&(eps, target)| {
            let problem = TargetedUapProblem {
                base: UapProblem {
                    plan: plan.clone(),
                    inputs: inputs.clone(),
                    labels: labels.clone(),
                    eps,
                },
                target,
            };
            let dp = verify_targeted_uap(&problem, Method::DeepPolyIndividual, &config);
            let rv = verify_targeted_uap(&problem, Method::Raven, &config);
            vec![
                training.name().to_string(),
                format!("{eps}"),
                format!("{target}"),
                format!("{:.2}", dp.max_forced),
                format!("{:.2}", rv.max_forced),
            ]
        });
        for row in rows {
            table.push_row(row);
        }
    }
    table
}

/// Runs the selected tables, returning them in order.
///
/// # Panics
///
/// Panics on an unknown table id.
pub fn run(ids: &[&str], scope: Scope, threads: usize) -> Vec<Table> {
    ids.iter()
        .map(|&id| match id {
            "t1" => t1(scope, threads),
            "t2" => t2(scope, threads),
            "t3" => t3(scope, threads),
            "t4" => t4(scope, threads),
            "t5" => t5(scope, threads),
            "t6" => t6(scope, threads),
            "t7" => t7(scope, threads),
            other => panic!("unknown table {other:?} (expected t1..t7)"),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_t1_shape_holds() {
        let table = t1(Scope::Quick, 1);
        assert!(!table.rows.is_empty());
        for row in &table.rows {
            // Provable chains: box ≤ zonotope, box ≤ deeppoly ≤ io-lp ≤
            // raven (percentages have 1 decimal, so allow 0.1 slack).
            let vals: Vec<f64> = row[3..8].iter().map(|c| c.parse().unwrap()).collect();
            let (bx, zn, dp, io, rv) = (vals[0], vals[1], vals[2], vals[3], vals[4]);
            assert!(bx <= zn + 0.11, "box > zonotope in {row:?}");
            assert!(bx <= dp + 0.11, "box > deeppoly in {row:?}");
            assert!(dp <= io + 0.11, "deeppoly > io-lp in {row:?}");
            assert!(io <= rv + 0.11, "io-lp > raven in {row:?}");
        }
    }
}
