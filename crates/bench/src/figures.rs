//! Figure experiments F1–F4: series data printed as CSV, mirroring the
//! paper's plots (precision vs ε, scaling with k, ablations, and the
//! certified-vs-empirical sandwich).

use crate::models::{fc_model, uap_batches, Training};
use crate::report::Table;
use raven::{verify_uap, Method, PairStrategy, RavenConfig, UapProblem};
use raven_nn::attack;

/// A figure: named columns of numeric series, rendered as CSV.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure {
    /// Figure id and caption.
    pub title: String,
    /// Column names.
    pub columns: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<f64>>,
}

impl Figure {
    /// Renders the figure as CSV with a `#` caption line.
    pub fn to_csv(&self) -> String {
        let mut out = format!("# {}\n{}\n", self.title, self.columns.join(","));
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(|v| format!("{v:.4}")).collect();
            out.push_str(&cells.join(","));
            out.push('\n');
        }
        out
    }

    /// Renders the figure as a markdown table (for `EXPERIMENTS.md`).
    pub fn to_table(&self) -> Table {
        let headers: Vec<&str> = self.columns.iter().map(String::as_str).collect();
        let mut t = Table::new(self.title.clone(), &headers);
        for row in &self.rows {
            t.push_row(row.iter().map(|v| format!("{v:.3}")).collect());
        }
        t
    }
}

fn avg_uap_accuracy(
    model: &crate::models::BenchModel,
    eps: f64,
    k: usize,
    batches: usize,
    method: Method,
    config: &RavenConfig,
) -> (f64, f64) {
    let plan = model.net.to_plan();
    let groups = uap_batches(model, k, batches);
    let mut acc = 0.0;
    let mut millis = 0.0;
    for (inputs, labels) in &groups {
        let problem = UapProblem {
            plan: plan.clone(),
            inputs: inputs.clone(),
            labels: labels.clone(),
            eps,
        };
        let res = verify_uap(&problem, method, config);
        acc += res.worst_case_accuracy;
        millis += res.solve_millis;
    }
    let n = groups.len() as f64;
    (acc / n, millis / n)
}

/// F1: certified worst-case UAP accuracy vs ε for all four methods.
///
/// The ε grid points are independent (no dead-method skip here — every
/// cell is solved), so they fan out across `threads` workers.
pub fn f1(threads: usize) -> Figure {
    let model = fc_model("fc-med", Training::Standard);
    let config = RavenConfig {
        threads,
        ..RavenConfig::default()
    };
    let grid: Vec<f64> = (1..=6).map(|i| 0.02 * i as f64).collect();
    let rows: Vec<Vec<f64>> = raven::par::map(threads, &grid, |&eps| {
        let mut row = vec![eps];
        for method in Method::all() {
            row.push(avg_uap_accuracy(&model, eps, 3, 1, method, &config).0);
        }
        row
    });
    Figure {
        title: "F1: certified worst-case UAP accuracy vs eps (fc-med/std, k=3)".into(),
        columns: vec![
            "eps".into(),
            "box".into(),
            "zonotope".into(),
            "deeppoly".into(),
            "io-lp".into(),
            "raven".into(),
        ],
        rows,
    }
}

/// F2: precision and time as the number of executions k grows.
pub fn f2(threads: usize) -> Figure {
    let model = fc_model("fc-small", Training::Standard);
    let config = RavenConfig {
        threads,
        ..RavenConfig::default()
    };
    let ks: Vec<usize> = (2..=5).collect();
    let rows: Vec<Vec<f64>> = raven::par::map(threads, &ks, |&k| {
        let (io_acc, io_ms) = avg_uap_accuracy(&model, 0.1, k, 1, Method::IoLp, &config);
        let (rv_acc, rv_ms) = avg_uap_accuracy(&model, 0.1, k, 1, Method::Raven, &config);
        vec![k as f64, io_acc, rv_acc, io_ms, rv_ms]
    });
    Figure {
        title: "F2: precision and time vs k (fc-small/std, eps=0.1)".into(),
        columns: vec![
            "k".into(),
            "io-lp acc".into(),
            "raven acc".into(),
            "io-lp ms".into(),
            "raven ms".into(),
        ],
        rows,
    }
}

/// F3: ablation over the DiffPoly pair strategy and the spec solver.
pub fn f3(threads: usize) -> Figure {
    let model = fc_model("fc-small", Training::Standard);
    let mut cases = Vec::new();
    let strategies = [
        (PairStrategy::None, 0.0),
        (PairStrategy::Consecutive, 1.0),
        (PairStrategy::AllPairs, 2.0),
    ];
    for (pairs, code) in strategies {
        for (milp, milp_code) in [(false, 0.0), (true, 1.0)] {
            cases.push((pairs, code, milp, milp_code));
        }
    }
    let rows: Vec<Vec<f64>> =
        raven::par::map(threads, &cases, |&(pairs, code, milp, milp_code)| {
            let config = RavenConfig {
                pairs,
                spec_milp: milp,
                threads,
                ..RavenConfig::default()
            };
            let (acc, millis) = avg_uap_accuracy(&model, 0.1, 3, 1, Method::Raven, &config);
            vec![code, milp_code, acc, millis]
        });
    Figure {
        title: "F3: ablation — pair strategy (0=none,1=consecutive,2=all) x spec \
                solver (0=lp,1=milp), fc-small/std, eps=0.1, k=3"
            .into(),
        columns: vec![
            "pairs".into(),
            "milp".into(),
            "accuracy".into(),
            "ms".into(),
        ],
        rows,
    }
}

/// F4: certified lower bound vs UAP-attack upper bound.
pub fn f4(threads: usize) -> Figure {
    let model = fc_model("fc-small", Training::Standard);
    let config = RavenConfig {
        threads,
        ..RavenConfig::default()
    };
    let plan = model.net.to_plan();
    let (inputs, labels) = uap_batches(&model, 3, 1).remove(0);
    let grid: Vec<f64> = (1..=6).map(|i| 0.025 * i as f64).collect();
    let rows: Vec<Vec<f64>> = raven::par::map(threads, &grid, |&eps| {
        let problem = UapProblem {
            plan: plan.clone(),
            inputs: inputs.clone(),
            labels: labels.clone(),
            eps,
        };
        let cert = verify_uap(&problem, Method::Raven, &config);
        let atk = attack::uap(&model.net, &inputs, &labels, eps, 25, eps / 5.0);
        vec![eps, cert.worst_case_accuracy, atk.accuracy]
    });
    Figure {
        title: "F4: certified lower bound vs UAP-attack upper bound (fc-small/std, k=3)".into(),
        columns: vec![
            "eps".into(),
            "raven certified".into(),
            "attack upper".into(),
        ],
        rows,
    }
}

/// F5: the direct measurement of difference tracking — the width of the
/// certified output-difference interval under DiffPoly, relative to naively
/// subtracting the two executions' DeepPoly bounds, as network depth grows.
/// Ratios far below 1 are the paper's core "difference tracking is precise"
/// claim.
pub fn f5(threads: usize) -> Figure {
    use raven_deeppoly::DeepPolyAnalysis;
    use raven_diffpoly::DiffPolyAnalysis;
    use raven_interval::{linf_ball, Interval};
    use raven_nn::{ActKind, NetworkBuilder};
    let depths: Vec<usize> = (1..=5).collect();
    let rows: Vec<Vec<f64>> = raven::par::map(threads, &depths, |&depth| {
        let mut b = NetworkBuilder::new(12);
        for layer in 0..depth {
            b = b.dense(16, 300 + layer as u64).activation(ActKind::Relu);
        }
        let net = b.dense(4, 399).build();
        let plan = net.to_plan();
        let za: Vec<f64> = (0..12).map(|i| 0.4 + 0.02 * (i % 5) as f64).collect();
        let zb: Vec<f64> = (0..12).map(|i| 0.45 + 0.015 * (i % 7) as f64).collect();
        let eps = 0.05;
        let dp_a = DeepPolyAnalysis::run(
            &plan,
            &linf_ball(&za, eps, f64::NEG_INFINITY, f64::INFINITY),
        );
        let dp_b = DeepPolyAnalysis::run(
            &plan,
            &linf_ball(&zb, eps, f64::NEG_INFINITY, f64::INFINITY),
        );
        let delta: Vec<Interval> = za
            .iter()
            .zip(&zb)
            .map(|(&a, &b)| Interval::point(a - b))
            .collect();
        let diff = DiffPolyAnalysis::run(&plan, &dp_a, &dp_b, &delta);
        let mut tracked = 0.0;
        let mut naive = 0.0;
        for (iv, (a, b)) in diff
            .output()
            .iter()
            .zip(dp_a.output().iter().zip(dp_b.output()))
        {
            tracked += iv.width();
            naive += (*a - *b).width();
        }
        vec![depth as f64, tracked, naive, tracked / naive]
    });
    Figure {
        title: "F5: certified output-difference width — DiffPoly vs per-execution \
                subtraction, by depth (shared eps=0.05 perturbation)"
            .into(),
        columns: vec![
            "depth".into(),
            "diffpoly width".into(),
            "subtraction width".into(),
            "ratio".into(),
        ],
        rows,
    }
}

/// F6: the ℓ1-budget threat model — certified worst-case accuracy as the
/// shared perturbation's ℓ1 budget grows, at a fixed per-pixel ℓ∞ cap.
/// The LP methods encode the budget exactly; the box-shaped baselines
/// cannot and stay at their ℓ∞ answer, so the curves showcase the
/// expressiveness of LP-based relational verification over non-box input
/// specifications.
pub fn f6(threads: usize) -> Figure {
    use raven::verify_uap_l1;
    let model = fc_model("fc-small", Training::Standard);
    let plan = model.net.to_plan();
    let (inputs, labels) = uap_batches(&model, 3, 1).remove(0);
    let eps = 0.12; // per-pixel cap where the plain ℓ∞ answer is weak
    let config = RavenConfig {
        threads,
        ..RavenConfig::default()
    };
    let problem = UapProblem {
        plan,
        inputs,
        labels,
        eps,
    };
    let linf_only = verify_uap(&problem, Method::Raven, &config).worst_case_accuracy;
    let budgets: Vec<f64> = (0..=6).map(|i| 0.3 * i as f64).collect();
    let rows: Vec<Vec<f64>> = raven::par::map(threads, &budgets, |&budget| {
        let deeppoly = verify_uap_l1(&problem, budget, Method::DeepPolyIndividual, &config)
            .worst_case_accuracy;
        let raven = verify_uap_l1(&problem, budget, Method::Raven, &config).worst_case_accuracy;
        vec![budget, deeppoly, raven, linf_only]
    });
    Figure {
        title: format!(
            "F6: certified worst-case accuracy vs shared-perturbation l1 budget              (fc-small/std, k=3, per-pixel cap eps={eps})"
        ),
        columns: vec![
            "l1 budget".into(),
            "deeppoly (box relax)".into(),
            "raven (exact l1)".into(),
            "raven linf-only".into(),
        ],
        rows,
    }
}

/// Runs the selected figures.
///
/// # Panics
///
/// Panics on an unknown figure id.
pub fn run(ids: &[&str], threads: usize) -> Vec<Figure> {
    ids.iter()
        .map(|&id| match id {
            "f1" => f1(threads),
            "f2" => f2(threads),
            "f3" => f3(threads),
            "f4" => f4(threads),
            "f5" => f5(threads),
            "f6" => f6(threads),
            other => panic!("unknown figure {other:?} (expected f1..f6)"),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f4_sandwich_holds() {
        let fig = f4(1);
        for row in &fig.rows {
            assert!(
                row[1] <= row[2] + 1e-9,
                "certified bound {} exceeds attack upper bound {} at eps {}",
                row[1],
                row[2],
                row[0]
            );
        }
    }

    #[test]
    fn f5_difference_tracking_is_tighter() {
        let fig = f5(2);
        for row in &fig.rows {
            assert!(row[3] <= 1.0 + 1e-9, "ratio above 1 at depth {}", row[0]);
        }
        // At depth ≥ 2 difference tracking must win clearly.
        assert!(fig.rows.iter().any(|r| r[0] >= 2.0 && r[3] < 0.8));
    }

    #[test]
    fn f6_l1_budget_is_monotone_and_dominates_linf() {
        let fig = f6(1);
        // Accuracy is non-increasing in the ℓ1 budget, and the exact-ℓ1
        // answer is never worse than the ℓ∞-only answer.
        for w in fig.rows.windows(2) {
            assert!(w[0][2] >= w[1][2] - 1e-9, "raven column not monotone");
        }
        for row in &fig.rows {
            assert!(row[2] >= row[3] - 1e-9, "l1 answer below linf-only");
            assert!(row[2] >= row[1] - 1e-9, "raven below box-relaxed deeppoly");
        }
    }

    #[test]
    fn figure_csv_rendering() {
        let fig = Figure {
            title: "demo".into(),
            columns: vec!["a".into(), "b".into()],
            rows: vec![vec![1.0, 2.0]],
        };
        let csv = fig.to_csv();
        assert!(csv.contains("# demo"));
        assert!(csv.contains("a,b"));
        assert!(csv.contains("1.0000,2.0000"));
    }
}
