//! Minimal markdown table rendering for the benchmark binaries.

/// A rendered experiment table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Experiment identifier and description (e.g. `T1: ...`).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Row cells (already formatted).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics when the cell count differs from the header count.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "table row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the table as GitHub-flavoured markdown.
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("### {}\n\n", self.title));
        let fmt_row = |cells: &[String]| {
            let padded: Vec<String> = cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect();
            format!("| {} |\n", padded.join(" | "))
        };
        out.push_str(&fmt_row(&self.headers));
        let dashes: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&format!("| {} |\n", dashes.join(" | ")));
        for row in &self.rows {
            out.push_str(&fmt_row(row));
        }
        out
    }
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}", 100.0 * x)
}

/// Formats milliseconds with adaptive precision.
pub fn ms(x: f64) -> String {
    if x < 10.0 {
        format!("{x:.2}")
    } else {
        format!("{x:.0}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_rendering_is_aligned() {
        let mut t = Table::new("T0: demo", &["net", "acc"]);
        t.push_row(vec!["fc-small".into(), "98.0".into()]);
        let md = t.to_markdown();
        assert!(md.contains("### T0: demo"));
        assert!(md.contains("| net      | acc  |"));
        assert!(md.contains("| fc-small | 98.0 |"));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn row_width_is_checked() {
        Table::new("x", &["a", "b"]).push_row(vec!["1".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(pct(0.8123), "81.2");
        assert_eq!(ms(1.25), "1.25");
        assert_eq!(ms(123.4), "123");
    }
}
