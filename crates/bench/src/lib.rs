//! Benchmark harness for the RaVeN reproduction.
//!
//! This crate regenerates every table and figure of the reconstructed
//! evaluation (see `DESIGN.md` for the experiment index and `EXPERIMENTS.md`
//! for recorded results):
//!
//! * `cargo run -p raven-bench --release --bin tables -- all` — T1–T5
//! * `cargo run -p raven-bench --release --bin figures -- all` — F1–F4
//! * `cargo bench -p raven-bench` — Criterion micro-benchmarks of the
//!   domains and the LP solver.
//!
//! The model zoo ([`models`]) trains every benchmark network from scratch
//! with fixed seeds, standing in for the paper's pretrained MNIST/CIFAR
//! models; results are therefore deterministic on a given platform.

pub mod figures;
pub mod models;
pub mod report;
pub mod tables;
