//! Benchmark harness for the RaVeN reproduction.
//!
//! This crate regenerates every table and figure of the reconstructed
//! evaluation (see `DESIGN.md` for the experiment index and `EXPERIMENTS.md`
//! for recorded results):
//!
//! * `cargo run -p raven-bench --release --bin tables -- all` — T1–T5
//! * `cargo run -p raven-bench --release --bin figures -- all` — F1–F4
//! * `cargo bench -p raven-bench` — micro-benchmarks of the domains and
//!   the LP solver (self-contained harness in [`timing`]).
//!
//! The model zoo ([`models`]) trains every benchmark network from scratch
//! with fixed seeds, standing in for the paper's pretrained MNIST/CIFAR
//! models; results are therefore deterministic on a given platform.

pub mod figures;
pub mod models;
pub mod report;
pub mod tables;
pub mod timing;

/// Parses a `--threads n` pair from raw binary arguments (default 1; `0`
/// means all cores, matching `RavenConfig::threads`).
pub fn threads_arg(args: &[String]) -> usize {
    args.iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

/// The positional (non-flag) arguments, skipping `--threads`' value.
pub fn positional_args(args: &[String]) -> Vec<String> {
    let mut out = Vec::new();
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        if arg == "--threads" {
            it.next();
        } else if !arg.starts_with("--") {
            out.push(arg.clone());
        }
    }
    out
}

#[cfg(test)]
mod arg_tests {
    use super::*;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn threads_and_positionals_parse_together() {
        let args = strs(&["--quick", "--threads", "4", "t1", "t5"]);
        assert_eq!(threads_arg(&args), 4);
        assert_eq!(positional_args(&args), strs(&["t1", "t5"]));
        let bare = strs(&["all"]);
        assert_eq!(threads_arg(&bare), 1);
        assert_eq!(positional_args(&bare), strs(&["all"]));
        let trailing = strs(&["t2", "--threads"]);
        assert_eq!(threads_arg(&trailing), 1);
        assert_eq!(positional_args(&trailing), strs(&["t2"]));
    }
}
