//! The benchmark model zoo.
//!
//! Mirrors the paper's network/training grid: fully-connected ReLU networks
//! of three sizes and a small convolutional network, each in a standard and
//! a PGD-adversarially trained variant, plus a sigmoid network on the
//! monotone tabular task. All models are trained in-process from fixed
//! seeds (fast at these sizes) so the whole evaluation is self-contained.

use raven_nn::data::{synth_credit, synth_digits, synth_rgb, CreditSpec, Dataset};
use raven_nn::train::{train_classifier, AdvTrainConfig, TrainConfig};
use raven_nn::{ActKind, Network, NetworkBuilder};
use std::sync::OnceLock;

/// Training regime for a benchmark network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Training {
    /// Plain SGD (accurate but fragile — large unstable-neuron counts).
    Standard,
    /// PGD adversarial training (the paper's robust-training stand-in).
    Pgd,
}

impl Training {
    /// Short name used in table rows.
    pub fn name(self) -> &'static str {
        match self {
            Training::Standard => "std",
            Training::Pgd => "pgd",
        }
    }
}

/// A trained benchmark network together with its evaluation data.
#[derive(Debug, Clone)]
pub struct BenchModel {
    /// Identifier used in tables (e.g. `fc-med/pgd`).
    pub name: String,
    /// The trained network.
    pub net: Network,
    /// Held-out test set drawn from the same distribution.
    pub test: Dataset,
    /// Training-set accuracy reached.
    pub train_accuracy: f64,
}

fn train_on(
    mut net: Network,
    ds: &Dataset,
    training: Training,
    epochs: usize,
    seed: u64,
) -> (Network, f64) {
    let adversarial = match training {
        Training::Standard => None,
        Training::Pgd => Some(AdvTrainConfig {
            eps: 0.06,
            steps: 4,
            step_size: 0.025,
            adv_fraction: 0.5,
        }),
    };
    let report = train_classifier(
        &mut net,
        ds,
        &TrainConfig {
            epochs,
            lr: 0.4,
            momentum: 0.0,
            batch_size: 8,
            seed,
            adversarial,
        },
    );
    (net, report.final_accuracy)
}

/// The digit-classification dataset used by the FC benchmarks (6×6
/// grayscale, 4 classes).
pub fn digits_dataset() -> &'static Dataset {
    static DS: OnceLock<Dataset> = OnceLock::new();
    DS.get_or_init(|| synth_digits(6, 4, 280, 0.15, 42))
}

/// The RGB dataset used by the conv benchmark (3×4×4, 4 classes).
pub fn rgb_dataset() -> &'static Dataset {
    static DS: OnceLock<Dataset> = OnceLock::new();
    DS.get_or_init(|| synth_rgb(4, 4, 240, 0.07, 43))
}

/// The monotone tabular dataset plus its ground-truth monotone features.
pub fn credit_dataset() -> &'static (Dataset, CreditSpec) {
    static DS: OnceLock<(Dataset, CreditSpec)> = OnceLock::new();
    DS.get_or_init(|| synth_credit(300, 0.05, 44))
}

/// Architecture names available from [`fc_model`].
pub const FC_SIZES: [&str; 3] = ["fc-small", "fc-med", "fc-big"];

fn fc_architecture(size: &str, input_dim: usize, classes: usize) -> Network {
    let b = NetworkBuilder::new(input_dim);
    match size {
        "fc-small" => b
            .dense(24, 101)
            .activation(ActKind::Relu)
            .dense(24, 102)
            .activation(ActKind::Relu)
            .dense(classes, 103)
            .build(),
        "fc-med" => b
            .dense(32, 111)
            .activation(ActKind::Relu)
            .dense(32, 112)
            .activation(ActKind::Relu)
            .dense(32, 113)
            .activation(ActKind::Relu)
            .dense(classes, 114)
            .build(),
        "fc-big" => b
            .dense(32, 121)
            .activation(ActKind::Relu)
            .dense(32, 122)
            .activation(ActKind::Relu)
            .dense(32, 123)
            .activation(ActKind::Relu)
            .dense(32, 124)
            .activation(ActKind::Relu)
            .dense(classes, 125)
            .build(),
        other => panic!("unknown fc size {other:?}"),
    }
}

/// Trains (and caches) a fully-connected benchmark model.
///
/// # Panics
///
/// Panics on an unknown size name.
pub fn fc_model(size: &str, training: Training) -> BenchModel {
    static CACHE: OnceLock<std::sync::Mutex<std::collections::HashMap<String, BenchModel>>> =
        OnceLock::new();
    let key = format!("{size}/{}", training.name());
    let cache = CACHE.get_or_init(Default::default);
    if let Some(m) = cache.lock().expect("model cache lock").get(&key) {
        return m.clone();
    }
    let ds = digits_dataset();
    let (train, test) = ds.split(0.2);
    let net = fc_architecture(size, ds.input_dim, ds.num_classes);
    let epochs = match training {
        Training::Standard => 35,
        Training::Pgd => 30,
    };
    let (net, acc) = train_on(net, &train, training, epochs, 7);
    let model = BenchModel {
        name: key.clone(),
        net,
        test,
        train_accuracy: acc,
    };
    cache
        .lock()
        .expect("model cache lock")
        .insert(key, model.clone());
    model
}

/// Trains (and caches) the convolutional benchmark model.
pub fn conv_model(training: Training) -> BenchModel {
    static CACHE: OnceLock<std::sync::Mutex<std::collections::HashMap<String, BenchModel>>> =
        OnceLock::new();
    let key = format!("conv-small/{}", training.name());
    let cache = CACHE.get_or_init(Default::default);
    if let Some(m) = cache.lock().expect("model cache lock").get(&key) {
        return m.clone();
    }
    let ds = rgb_dataset();
    let (train, test) = ds.split(0.2);
    let net = NetworkBuilder::new(ds.input_dim)
        .conv(3, 4, 4, 4, 3, 3, 1, 1, 131)
        .activation(ActKind::Relu)
        .dense(24, 132)
        .activation(ActKind::Relu)
        .dense(ds.num_classes, 133)
        .build();
    let (net, acc) = train_on(net, &train, training, 30, 8);
    let model = BenchModel {
        name: key.clone(),
        net,
        test,
        train_accuracy: acc,
    };
    cache
        .lock()
        .expect("model cache lock")
        .insert(key, model.clone());
    model
}

/// Trains (and caches) the sigmoid network for the monotonicity benchmark.
pub fn credit_model() -> BenchModel {
    static CACHE: OnceLock<BenchModel> = OnceLock::new();
    CACHE
        .get_or_init(|| {
            let (ds, _) = credit_dataset();
            let (train, test) = ds.split(0.2);
            let net = NetworkBuilder::new(ds.input_dim)
                .dense(12, 141)
                .activation(ActKind::Sigmoid)
                .dense(12, 142)
                .activation(ActKind::Sigmoid)
                .dense(2, 143)
                .build();
            let (net, acc) = train_on(net, &train, Training::Standard, 60, 9);
            BenchModel {
                name: "credit-sigmoid".into(),
                net,
                test,
                train_accuracy: acc,
            }
        })
        .clone()
}

/// Trains (and caches) an fc-small-shaped model with the given activation
/// (the T6 activation-generality sweep).
pub fn act_model(kind: ActKind) -> BenchModel {
    static CACHE: OnceLock<std::sync::Mutex<std::collections::HashMap<String, BenchModel>>> =
        OnceLock::new();
    let key = format!("fc-small-{}", kind.name());
    let cache = CACHE.get_or_init(Default::default);
    if let Some(m) = cache.lock().expect("model cache lock").get(&key) {
        return m.clone();
    }
    let ds = digits_dataset();
    let (train, test) = ds.split(0.2);
    let net = NetworkBuilder::new(ds.input_dim)
        .dense(24, 151)
        .activation(kind)
        .dense(24, 152)
        .activation(kind)
        .dense(ds.num_classes, 153)
        .build();
    let (net, acc) = train_on(net, &train, Training::Standard, 40, 10);
    let model = BenchModel {
        name: key.clone(),
        net,
        test,
        train_accuracy: acc,
    };
    cache
        .lock()
        .expect("model cache lock")
        .insert(key, model.clone());
    model
}

/// Draws `count` batches of `k` correctly-classified test inputs for UAP
/// verification, in deterministic order.
pub fn uap_batches(model: &BenchModel, k: usize, count: usize) -> Vec<(Vec<Vec<f64>>, Vec<usize>)> {
    let mut batches = Vec::new();
    let mut cur_inputs = Vec::new();
    let mut cur_labels = Vec::new();
    for (x, &y) in model.test.inputs.iter().zip(&model.test.labels) {
        if model.net.classify(x) != y {
            continue;
        }
        cur_inputs.push(x.clone());
        cur_labels.push(y);
        if cur_inputs.len() == k {
            batches.push((
                std::mem::take(&mut cur_inputs),
                std::mem::take(&mut cur_labels),
            ));
            if batches.len() == count {
                break;
            }
        }
    }
    batches
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fc_small_trains_to_usable_accuracy() {
        let m = fc_model("fc-small", Training::Standard);
        assert!(m.train_accuracy > 0.9, "accuracy {}", m.train_accuracy);
        assert_eq!(m.net.input_dim(), 36);
    }

    #[test]
    fn model_cache_returns_identical_networks() {
        let a = fc_model("fc-small", Training::Standard);
        let b = fc_model("fc-small", Training::Standard);
        assert_eq!(a.net, b.net);
    }

    #[test]
    fn uap_batches_are_correctly_classified() {
        let m = fc_model("fc-small", Training::Standard);
        let batches = uap_batches(&m, 3, 2);
        assert_eq!(batches.len(), 2);
        for (inputs, labels) in &batches {
            assert_eq!(inputs.len(), 3);
            for (x, &y) in inputs.iter().zip(labels) {
                assert_eq!(m.net.classify(x), y);
            }
        }
    }

    #[test]
    fn credit_model_learns_the_task() {
        let m = credit_model();
        assert!(m.train_accuracy > 0.8, "accuracy {}", m.train_accuracy);
    }
}
