use crate::{LpError, SimplexOptions};
use std::fmt;

/// Identifier of a decision variable within an [`LpProblem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// Zero-based index of the variable.
    pub fn index(self) -> usize {
        self.0
    }
}

/// A sparse linear expression `Σ coeff_i · var_i`.
///
/// # Examples
///
/// ```
/// use raven_lp::{LinExpr, LpProblem};
///
/// let mut p = LpProblem::new();
/// let x = p.add_var(0.0, 1.0);
/// let y = p.add_var(0.0, 1.0);
/// let e = LinExpr::new().term(1.0, x).term(-2.0, y);
/// assert_eq!(e.eval(&[0.5, 0.25]), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LinExpr {
    terms: Vec<(VarId, f64)>,
}

impl LinExpr {
    /// An empty (zero) expression.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `coeff * var` and returns the expression (builder style).
    pub fn term(mut self, coeff: f64, var: VarId) -> Self {
        self.push(coeff, var);
        self
    }

    /// Adds `coeff * var` in place.
    pub fn push(&mut self, coeff: f64, var: VarId) {
        if coeff != 0.0 {
            self.terms.push((var, coeff));
        }
    }

    /// The raw `(variable, coefficient)` terms.
    pub fn terms(&self) -> &[(VarId, f64)] {
        &self.terms
    }

    /// Evaluates the expression at a point (indexed by variable).
    ///
    /// # Panics
    ///
    /// Panics when a referenced variable index is out of range for `x`.
    pub fn eval(&self, x: &[f64]) -> f64 {
        self.terms.iter().map(|&(v, c)| c * x[v.0]).sum()
    }

    /// Merges duplicate variables by summing coefficients.
    pub fn normalized(mut self) -> Self {
        self.terms.sort_by_key(|&(v, _)| v);
        let mut out: Vec<(VarId, f64)> = Vec::with_capacity(self.terms.len());
        for (v, c) in self.terms {
            match out.last_mut() {
                Some((pv, pc)) if *pv == v => *pc += c,
                _ => out.push((v, c)),
            }
        }
        out.retain(|&(_, c)| c != 0.0);
        Self { terms: out }
    }
}

impl FromIterator<(VarId, f64)> for LinExpr {
    fn from_iter<I: IntoIterator<Item = (VarId, f64)>>(iter: I) -> Self {
        let mut e = LinExpr::new();
        for (v, c) in iter {
            e.push(c, v);
        }
        e
    }
}

/// Direction of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    /// `expr ≤ rhs`.
    Le,
    /// `expr ≥ rhs`.
    Ge,
    /// `expr = rhs`.
    Eq,
}

/// Optimization direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Direction {
    /// Minimize the objective (default).
    #[default]
    Minimize,
    /// Maximize the objective.
    Maximize,
}

#[derive(Debug, Clone)]
pub(crate) struct Row {
    pub expr: LinExpr,
    pub sense: Sense,
    pub rhs: f64,
}

/// Well-defined outcome of an LP/MILP solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SolveStatus {
    /// An optimal solution was found.
    Optimal,
    /// The constraints are unsatisfiable.
    Infeasible,
    /// The objective is unbounded in the optimization direction.
    Unbounded,
    /// A MILP solve ran out of budget (deadline, cancellation, or node
    /// limit) before closing the gap. `best_bound` is the sound *dual*
    /// bound in the optimization direction: the true optimum is `≤
    /// best_bound` for Maximize and `≥ best_bound` for Minimize (it is the
    /// max/min over the incumbent and every open node's parent relaxation;
    /// infinite when not even the root relaxation finished). The attached
    /// [`Solution::values`] hold the best feasible incumbent when one was
    /// found, and [`Solution::objective`] equals `best_bound`.
    BudgetExceeded {
        /// Sound dual bound over the unexplored search space.
        best_bound: f64,
    },
}

/// Result of a successful solver run.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// Outcome of the solve.
    pub status: SolveStatus,
    /// Optimal objective value (meaningful only when `status` is
    /// [`SolveStatus::Optimal`]).
    pub objective: f64,
    /// Values of the structural variables (empty unless optimal).
    pub values: Vec<f64>,
    /// Row duals (shadow prices): `duals[i]` is the rate of change of the
    /// optimal objective per unit increase of row `i`'s right-hand side, in
    /// the *user's* optimization orientation. Whenever the status is
    /// [`SolveStatus::Optimal`] this has exactly one entry per constraint
    /// row, in the order the rows were added — rows dropped by presolve get
    /// their duals mapped back (removed redundant rows are slack at the
    /// optimum and report 0). Empty for MILP solves, where duals are not
    /// well-defined across branching.
    pub duals: Vec<f64>,
    /// Farkas infeasibility multipliers: when `status` is
    /// [`SolveStatus::Infeasible`] and the simplex (rather than presolve)
    /// detected it, one entry per constraint row such that aggregating the
    /// rows with these weights yields an inequality no point in the
    /// variable box can satisfy (`≤` rows get non-positive weights, `≥`
    /// rows non-negative, `=` rows are free). Empty when infeasibility was
    /// detected structurally (presolve) or the status is not Infeasible.
    pub farkas: Vec<f64>,
}

impl Solution {
    /// Whether the solve proved optimality.
    pub fn is_optimal(&self) -> bool {
        self.status == SolveStatus::Optimal
    }

    /// Value of `var` in the optimal solution.
    ///
    /// # Panics
    ///
    /// Panics when the solution is not optimal or the variable is unknown.
    pub fn value(&self, var: VarId) -> f64 {
        self.values[var.0]
    }
}

/// A linear (or mixed-integer linear) optimization problem with bounded
/// variables.
///
/// This is the Gurobi stand-in used by the RaVeN verifier: build variables
/// and constraints, set an objective, then [`solve`](LpProblem::solve) (pure
/// LP) or [`solve_milp`](LpProblem::solve_milp) (branch & bound over the
/// variables marked integer).
///
/// # Examples
///
/// ```
/// use raven_lp::{Direction, LinExpr, LpProblem, Sense};
///
/// // max x + y  s.t.  x + 2y ≤ 4, 3x + y ≤ 6, 0 ≤ x,y ≤ 10
/// let mut p = LpProblem::new();
/// let x = p.add_var(0.0, 10.0);
/// let y = p.add_var(0.0, 10.0);
/// p.add_constraint(LinExpr::new().term(1.0, x).term(2.0, y), Sense::Le, 4.0);
/// p.add_constraint(LinExpr::new().term(3.0, x).term(1.0, y), Sense::Le, 6.0);
/// p.set_objective(Direction::Maximize, LinExpr::new().term(1.0, x).term(1.0, y));
/// let sol = p.solve().unwrap();
/// assert!(sol.is_optimal());
/// assert!((sol.objective - 2.8).abs() < 1e-7);
/// ```
#[derive(Debug, Clone, Default)]
pub struct LpProblem {
    pub(crate) bounds: Vec<(f64, f64)>,
    pub(crate) integer: Vec<bool>,
    pub(crate) rows: Vec<Row>,
    pub(crate) objective: LinExpr,
    pub(crate) direction: Direction,
}

impl LpProblem {
    /// Creates an empty problem.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a continuous variable with bounds `[lo, hi]` (use infinities for
    /// unbounded sides) and returns its id.
    ///
    /// # Panics
    ///
    /// Panics when `lo > hi` or a bound is NaN.
    pub fn add_var(&mut self, lo: f64, hi: f64) -> VarId {
        assert!(!lo.is_nan() && !hi.is_nan(), "variable bound is NaN");
        assert!(lo <= hi, "variable bounds inverted: [{lo}, {hi}]");
        self.bounds.push((lo, hi));
        self.integer.push(false);
        VarId(self.bounds.len() - 1)
    }

    /// Adds a free (unbounded) variable.
    pub fn add_free_var(&mut self) -> VarId {
        self.add_var(f64::NEG_INFINITY, f64::INFINITY)
    }

    /// Adds a binary `{0, 1}` variable (integer-constrained in
    /// [`solve_milp`](LpProblem::solve_milp), relaxed to `[0,1]` in
    /// [`solve`](LpProblem::solve)).
    pub fn add_binary_var(&mut self) -> VarId {
        let v = self.add_var(0.0, 1.0);
        self.integer[v.0] = true;
        v
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.bounds.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.rows.len()
    }

    /// Tightens the bounds of an existing variable (intersection).
    ///
    /// # Panics
    ///
    /// Panics when the resulting bounds are inverted beyond tolerance.
    pub fn tighten_bounds(&mut self, var: VarId, lo: f64, hi: f64) {
        let (cur_lo, cur_hi) = self.bounds[var.0];
        let new_lo = cur_lo.max(lo);
        let new_hi = cur_hi.min(hi);
        assert!(
            new_lo <= new_hi + 1e-9,
            "tighten_bounds: empty domain [{new_lo}, {new_hi}]"
        );
        self.bounds[var.0] = (new_lo, new_hi.max(new_lo));
    }

    /// Adds the constraint `expr (sense) rhs`.
    pub fn add_constraint(&mut self, expr: LinExpr, sense: Sense, rhs: f64) {
        debug_assert!(
            expr.terms()
                .iter()
                .all(|&(v, c)| v.0 < self.num_vars() && c.is_finite()),
            "constraint references unknown variable or non-finite coefficient"
        );
        self.rows.push(Row {
            expr: expr.normalized(),
            sense,
            rhs,
        });
    }

    /// Sets the objective.
    pub fn set_objective(&mut self, direction: Direction, expr: LinExpr) {
        self.direction = direction;
        self.objective = expr.normalized();
    }

    /// Solves the continuous relaxation with default options.
    ///
    /// # Errors
    ///
    /// Returns an [`LpError`] on iteration limits or numerical breakdown.
    pub fn solve(&self) -> Result<Solution, LpError> {
        self.solve_with(&SimplexOptions::default())
    }

    /// Solves the continuous relaxation with explicit options.
    ///
    /// # Errors
    ///
    /// Returns an [`LpError`] on iteration limits or numerical breakdown.
    pub fn solve_with(&self, options: &SimplexOptions) -> Result<Solution, LpError> {
        crate::simplex::solve(self, options, &crate::Budget::unlimited())
    }

    /// Solves the continuous relaxation under a [`Budget`](crate::Budget),
    /// checked every pivot iteration.
    ///
    /// # Errors
    ///
    /// Returns [`LpError::BudgetExceeded`] when the budget expires
    /// mid-solve (an interrupted primal simplex has no sound bound to
    /// report), or other [`LpError`]s on iteration limits / numerical
    /// breakdown.
    pub fn solve_with_budget(
        &self,
        options: &SimplexOptions,
        budget: &crate::Budget<'_>,
    ) -> Result<Solution, LpError> {
        crate::simplex::solve(self, options, budget)
    }

    /// Solves the mixed-integer problem by branch & bound over the
    /// variables created with [`add_binary_var`](LpProblem::add_binary_var).
    ///
    /// # Errors
    ///
    /// Returns an [`LpError`] on node/iteration limits or numerical
    /// breakdown.
    pub fn solve_milp(&self) -> Result<Solution, LpError> {
        self.solve_milp_with(&crate::MilpOptions::default())
    }

    /// Solves the MILP with explicit options.
    ///
    /// # Errors
    ///
    /// Returns an [`LpError`] on iteration limits or numerical breakdown.
    /// Hitting `max_nodes` is *not* an error: the anytime incumbent/dual
    /// bound is returned via [`SolveStatus::BudgetExceeded`].
    pub fn solve_milp_with(&self, options: &crate::MilpOptions) -> Result<Solution, LpError> {
        crate::milp::solve(self, options, &crate::Budget::unlimited())
    }

    /// Solves the MILP under a [`Budget`](crate::Budget), checked at every
    /// branch-and-bound node and every simplex pivot inside node
    /// relaxations.
    ///
    /// On budget exhaustion the best sound anytime bound explored so far is
    /// returned via [`SolveStatus::BudgetExceeded`] — never an error.
    ///
    /// # Errors
    ///
    /// Returns an [`LpError`] on iteration limits or numerical breakdown
    /// (pure-LP problems without integer variables also surface
    /// [`LpError::BudgetExceeded`], since a bare LP has no anytime bound).
    pub fn solve_milp_with_budget(
        &self,
        options: &crate::MilpOptions,
        budget: &crate::Budget<'_>,
    ) -> Result<Solution, LpError> {
        crate::milp::solve(self, options, budget)
    }

    /// [`solve_milp_with_budget`](LpProblem::solve_milp_with_budget) with a
    /// caller-held [`BasisCache`](crate::BasisCache): the root relaxation
    /// warm-starts from the cached basis of a previous related solve (same
    /// or extended variable/row layout — e.g. the per-label encodings that
    /// share one relaxation) and the cache is refreshed with this solve's
    /// root basis. Purely an accelerator: a stale cache only costs the
    /// warm attempt, never correctness.
    ///
    /// # Errors
    ///
    /// Same contract as
    /// [`solve_milp_with_budget`](LpProblem::solve_milp_with_budget).
    pub fn solve_milp_cached(
        &self,
        options: &crate::MilpOptions,
        budget: &crate::Budget<'_>,
        cache: &mut crate::BasisCache,
    ) -> Result<Solution, LpError> {
        crate::milp::solve_with_cache(self, options, budget, cache)
    }

    /// [`solve_with_budget`](LpProblem::solve_with_budget) plus a proof
    /// certificate: the solve runs with presolve disabled (presolve rewrites
    /// the row set and would misalign the certificate's duals with the
    /// recorded rows) and packages the optimal duals — or Farkas
    /// infeasibility multipliers — into a replayable
    /// [`LpCertificate`](raven_check::LpCertificate). `None` when the
    /// outcome carries no replayable evidence (e.g. an unbounded LP).
    ///
    /// # Errors
    ///
    /// Same contract as [`solve_with_budget`](LpProblem::solve_with_budget).
    pub fn solve_certified(
        &self,
        options: &SimplexOptions,
        budget: &crate::Budget<'_>,
    ) -> Result<(Solution, Option<raven_check::LpCertificate>), LpError> {
        let mut opts = options.clone();
        opts.presolve_rounds = 0;
        let sol = crate::simplex::solve(self, &opts, budget)?;
        let cert = crate::certificate::bound_certificate(self, &sol);
        Ok((sol, cert))
    }

    /// [`solve_milp_with_budget`](LpProblem::solve_milp_with_budget) plus a
    /// proof certificate: branch & bound runs in certified mode (presolve
    /// off, per-leaf duals and Farkas rays collected) and packages the
    /// whole tree into a replayable
    /// [`LpCertificate`](raven_check::LpCertificate) whose claimed bound is
    /// this solve's own objective/dual bound. `None` when some part of the
    /// tree lacked evidence (an unbounded relaxation, an infeasibility
    /// without usable multipliers, or a budget exit with the root still
    /// open).
    ///
    /// # Errors
    ///
    /// Same contract as
    /// [`solve_milp_with_budget`](LpProblem::solve_milp_with_budget).
    pub fn solve_milp_certified(
        &self,
        options: &crate::MilpOptions,
        budget: &crate::Budget<'_>,
    ) -> Result<(Solution, Option<raven_check::LpCertificate>), LpError> {
        let mut collector = crate::certificate::BranchCollector::default();
        let sol = crate::milp::solve_collecting(
            self,
            options,
            budget,
            &mut crate::BasisCache::new(),
            Some(&mut collector),
        )?;
        let cert = crate::certificate::branch_certificate(self, &sol, collector);
        Ok((sol, cert))
    }

    /// Checks whether `x` satisfies every constraint and bound within `tol`.
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        if x.len() != self.num_vars() {
            return false;
        }
        for (xi, &(lo, hi)) in x.iter().zip(&self.bounds) {
            if *xi < lo - tol || *xi > hi + tol {
                return false;
            }
        }
        self.rows.iter().all(|row| {
            let v = row.expr.eval(x);
            match row.sense {
                Sense::Le => v <= row.rhs + tol,
                Sense::Ge => v >= row.rhs - tol,
                Sense::Eq => (v - row.rhs).abs() <= tol,
            }
        })
    }
}

impl fmt::Display for LpProblem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "LpProblem[{} vars, {} rows]",
            self.num_vars(),
            self.num_constraints()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linexpr_normalizes_duplicates() {
        let mut p = LpProblem::new();
        let x = p.add_var(0.0, 1.0);
        let e = LinExpr::new().term(1.0, x).term(2.0, x).normalized();
        assert_eq!(e.terms(), &[(x, 3.0)]);
        let z = LinExpr::new().term(1.0, x).term(-1.0, x).normalized();
        assert!(z.terms().is_empty());
    }

    #[test]
    #[should_panic(expected = "bounds inverted")]
    fn add_var_rejects_inverted_bounds() {
        LpProblem::new().add_var(1.0, 0.0);
    }

    #[test]
    fn is_feasible_checks_rows_and_bounds() {
        let mut p = LpProblem::new();
        let x = p.add_var(0.0, 2.0);
        p.add_constraint(LinExpr::new().term(1.0, x), Sense::Le, 1.0);
        assert!(p.is_feasible(&[0.5], 1e-9));
        assert!(!p.is_feasible(&[1.5], 1e-9));
        assert!(!p.is_feasible(&[-0.5], 1e-9));
    }

    #[test]
    fn tighten_bounds_intersects() {
        let mut p = LpProblem::new();
        let x = p.add_var(0.0, 2.0);
        p.tighten_bounds(x, 0.5, 5.0);
        assert_eq!(p.bounds[0], (0.5, 2.0));
    }
}
