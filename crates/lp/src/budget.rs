//! Cooperative solve budgets: wall-clock deadlines and cancellation.
//!
//! A [`Budget`] is threaded into the simplex pivot loop and the MILP node
//! loop so every solve is interruptible mid-flight. It is deliberately a
//! separate parameter rather than a field of `SimplexOptions`/`MilpOptions`:
//! options are plain comparable data (`PartialEq`), while a budget carries a
//! borrowed atomic flag and an absolute point in time.
//!
//! The two signals have different meanings to callers:
//!
//! * **cancel** — the caller no longer wants *any* answer (shutdown, client
//!   gone). Verification layers abort the run.
//! * **deadline** — the caller wants the best *sound* answer available right
//!   now. The MILP returns its anytime incumbent/dual bound
//!   ([`crate::SolveStatus::BudgetExceeded`]) and the verification layers
//!   degrade down the precision ladder instead of erroring.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// A wall-clock deadline and/or cancel flag polled inside solver loops.
///
/// The default budget is unlimited: [`Budget::exhausted`] is always `false`
/// and the solvers behave exactly as without a budget.
///
/// # Examples
///
/// ```
/// use raven_lp::Budget;
/// use std::time::{Duration, Instant};
///
/// let unlimited = Budget::default();
/// assert!(!unlimited.exhausted());
///
/// let expired = Budget::default().with_deadline(Instant::now() - Duration::from_millis(1));
/// assert!(expired.exhausted());
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Budget<'a> {
    deadline: Option<Instant>,
    /// Up to two independent cancel flags (a process-wide one plus a
    /// per-job one); either flag set exhausts the budget.
    cancels: [Option<&'a AtomicBool>; 2],
}

impl<'a> Budget<'a> {
    /// An unlimited budget (never exhausted).
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Sets an absolute wall-clock deadline.
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets a deadline `timeout` from now.
    pub fn with_deadline_in(self, timeout: Duration) -> Self {
        self.with_deadline(Instant::now() + timeout)
    }

    /// Attaches a cancel flag (checked with `Ordering::SeqCst`). May be
    /// called twice to watch two independent flags; a third call replaces
    /// the second flag.
    pub fn with_cancel(mut self, flag: &'a AtomicBool) -> Self {
        let slot = if self.cancels[0].is_none() { 0 } else { 1 };
        self.cancels[slot] = Some(flag);
        self
    }

    /// Whether this budget can never be exhausted.
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.cancels.iter().all(Option::is_none)
    }

    /// The absolute deadline, when one is set.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Whether cancellation was requested (ignores the deadline).
    pub fn cancelled(&self) -> bool {
        self.cancels
            .iter()
            .flatten()
            .any(|c| c.load(Ordering::SeqCst))
    }

    /// Whether the budget is spent: cancel requested or deadline passed.
    ///
    /// Cheap enough to poll every simplex pivot / MILP node.
    pub fn exhausted(&self) -> bool {
        if self.cancelled() {
            return true;
        }
        // Chaos: a deadline blackout simulates a wedged solver whose
        // budget never fires — the watchdog's cancel flag (above) remains
        // the only way out, exactly the scenario it supervises.
        if crate::chaos::deadline_blackout() {
            return false;
        }
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_is_never_exhausted() {
        let b = Budget::unlimited();
        assert!(b.is_unlimited());
        assert!(!b.exhausted());
        assert!(!b.cancelled());
    }

    #[test]
    fn expired_deadline_exhausts() {
        let b = Budget::default().with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(!b.is_unlimited());
        assert!(b.exhausted());
        assert!(!b.cancelled(), "deadline expiry is not cancellation");
    }

    #[test]
    fn future_deadline_does_not_exhaust() {
        let b = Budget::default().with_deadline_in(Duration::from_secs(3600));
        assert!(!b.exhausted());
    }

    #[test]
    fn cancel_flag_exhausts_when_set() {
        let flag = AtomicBool::new(false);
        let b = Budget::default().with_cancel(&flag);
        assert!(!b.exhausted());
        flag.store(true, Ordering::SeqCst);
        assert!(b.exhausted());
        assert!(b.cancelled());
    }

    #[test]
    fn either_of_two_cancel_flags_exhausts() {
        let process = AtomicBool::new(false);
        let job = AtomicBool::new(false);
        let b = Budget::default().with_cancel(&process).with_cancel(&job);
        assert!(!b.is_unlimited());
        assert!(!b.exhausted());
        job.store(true, Ordering::SeqCst);
        assert!(b.cancelled(), "second flag alone cancels");
        job.store(false, Ordering::SeqCst);
        process.store(true, Ordering::SeqCst);
        assert!(b.cancelled(), "first flag alone cancels");
    }
}
