//! Bounded-variable two-phase primal simplex with an explicit dense basis
//! inverse.
//!
//! The solver works on the computational form `A x + I s (+ Σ σ_i t_i) = b`
//! with bounds `l ≤ (x, s) ≤ u`, `t ≥ 0`, where one slack `s_i` is added
//! per row (`≤ → [0, ∞)`, `≥ → (-∞, 0]`, `= → [0, 0]`) and one *artificial*
//! `t_i` is added for every row whose initial slack value violates its
//! bounds. Phase 1 minimizes `Σ t_i` from a feasible basic start (the
//! artificials absorb all residuals); phase 2 pins the artificials to zero
//! and minimizes the user objective. Both phases use **fixed** cost
//! vectors, so Bland's anti-cycling rule applies verbatim when degeneracy
//! stalls progress.
//!
//! Numerical model: plain `f64` with a feasibility/optimality tolerance of
//! `1e-7`, a two-pass Harris-style ratio test that prefers large pivots,
//! and periodic refactorization of the basis inverse. These are the same
//! guarantees a floating-point Gurobi run provides the original RaVeN
//! implementation (see `DESIGN.md`).

use crate::{Budget, Direction, LpError, LpProblem, Sense, Solution, SolveStatus};

/// Tunable parameters for the simplex solver.
#[derive(Debug, Clone, PartialEq)]
pub struct SimplexOptions {
    /// Feasibility/optimality tolerance.
    pub tol: f64,
    /// Hard iteration limit (per phase).
    pub max_iters: usize,
    /// Refactorize the basis inverse every this many pivots.
    pub refactor_every: usize,
    /// Consecutive degenerate pivots before switching to Bland's rule.
    pub stall_threshold: usize,
    /// Presolve fixpoint rounds before the simplex (0 disables presolve).
    pub presolve_rounds: usize,
}

impl Default for SimplexOptions {
    fn default() -> Self {
        Self {
            tol: 1e-7,
            max_iters: 50_000,
            refactor_every: 300,
            stall_threshold: 60,
            presolve_rounds: 3,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum VarState {
    Basic(usize),
    NbLower,
    NbUpper,
    NbFree,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    One,
    Two,
}

struct Tableau<'a> {
    opts: &'a SimplexOptions,
    budget: &'a Budget<'a>,
    m: usize,
    n_struct: usize,
    /// Structural + slack count (artificial indices start here).
    n_slack_end: usize,
    n_total: usize,
    /// Sparse columns of the structural part of `A`.
    cols: Vec<Vec<(usize, f64)>>,
    /// Artificial columns: `(row, sign)`.
    art: Vec<(usize, f64)>,
    lower: Vec<f64>,
    upper: Vec<f64>,
    /// Phase-2 costs (0 for slacks and artificials).
    cost: Vec<f64>,
    rhs: Vec<f64>,
    state: Vec<VarState>,
    basis: Vec<usize>,
    x: Vec<f64>,
    /// Dense row-major `m x m` basis inverse.
    binv: Vec<f64>,
    pivots_since_refactor: usize,
    stall_count: usize,
}

enum ColIter<'a> {
    Struct(std::slice::Iter<'a, (usize, f64)>),
    Single(Option<(usize, f64)>),
}

impl Iterator for ColIter<'_> {
    type Item = (usize, f64);

    fn next(&mut self) -> Option<(usize, f64)> {
        match self {
            ColIter::Struct(it) => it.next().copied(),
            ColIter::Single(s) => s.take(),
        }
    }
}

impl<'a> Tableau<'a> {
    fn new(problem: &LpProblem, opts: &'a SimplexOptions, budget: &'a Budget<'a>) -> Self {
        let m = problem.rows.len();
        let n_struct = problem.num_vars();
        let n_slack_end = n_struct + m;
        let mut cols = vec![Vec::new(); n_struct];
        for (i, row) in problem.rows.iter().enumerate() {
            for &(v, c) in row.expr.terms() {
                cols[v.0].push((i, c));
            }
        }
        let mut lower = Vec::with_capacity(n_slack_end);
        let mut upper = Vec::with_capacity(n_slack_end);
        for &(lo, hi) in &problem.bounds {
            lower.push(lo);
            upper.push(hi);
        }
        for row in &problem.rows {
            match row.sense {
                Sense::Le => {
                    lower.push(0.0);
                    upper.push(f64::INFINITY);
                }
                Sense::Ge => {
                    lower.push(f64::NEG_INFINITY);
                    upper.push(0.0);
                }
                Sense::Eq => {
                    lower.push(0.0);
                    upper.push(0.0);
                }
            }
        }
        // Phase-2 costs (sign-flipped for maximization).
        let sign = match problem.direction {
            Direction::Minimize => 1.0,
            Direction::Maximize => -1.0,
        };
        let mut cost = vec![0.0; n_slack_end];
        for &(v, c) in problem.objective.terms() {
            cost[v.0] += sign * c;
        }
        let rhs: Vec<f64> = problem.rows.iter().map(|r| r.rhs).collect();
        // Nonbasic structurals at their finite bound closest to zero (or 0
        // when free).
        let mut state = Vec::with_capacity(n_slack_end);
        let mut x = vec![0.0; n_slack_end];
        for j in 0..n_struct {
            let (lo, hi) = (lower[j], upper[j]);
            let (s, v) = if lo.is_finite() && hi.is_finite() {
                if lo.abs() <= hi.abs() {
                    (VarState::NbLower, lo)
                } else {
                    (VarState::NbUpper, hi)
                }
            } else if lo.is_finite() {
                (VarState::NbLower, lo)
            } else if hi.is_finite() {
                (VarState::NbUpper, hi)
            } else {
                (VarState::NbFree, 0.0)
            };
            state.push(s);
            x[j] = v;
        }
        // Row residuals with all structurals nonbasic: resid = b − N x_N.
        let mut resid = rhs.clone();
        for (j, xj) in x.iter().enumerate().take(n_struct) {
            if *xj != 0.0 {
                for &(i, a) in &cols[j] {
                    resid[i] -= a * xj;
                }
            }
        }
        // Per row: clamp the slack into its bounds; if the residual exceeds
        // them, an artificial absorbs the remainder and becomes basic,
        // otherwise the slack itself is basic at the residual.
        let mut art: Vec<(usize, f64)> = Vec::new();
        let mut basis = Vec::with_capacity(m);
        for (i, &r) in resid.iter().enumerate() {
            let sj = n_struct + i;
            let (slo, shi) = (lower[sj], upper[sj]);
            if r >= slo - 0.0 && r <= shi + 0.0 {
                state.push(VarState::Basic(i));
                x[sj] = r;
                basis.push(sj);
            } else {
                // Slack parks at its nearest bound; artificial covers the
                // gap with a positive value.
                let s_val = r.clamp(slo, shi);
                let s_val = if s_val.is_finite() { s_val } else { 0.0 };
                state.push(if s_val == shi && shi.is_finite() {
                    VarState::NbUpper
                } else {
                    VarState::NbLower
                });
                x[sj] = s_val;
                let gap = r - s_val;
                let sigma = gap.signum();
                art.push((i, sigma));
                basis.push(n_slack_end + art.len() - 1);
                // Value filled in below once the variable exists.
            }
        }
        let n_total = n_slack_end + art.len();
        for _ in 0..art.len() {
            lower.push(0.0);
            upper.push(f64::INFINITY);
            cost.push(0.0);
            x.push(0.0);
        }
        // Mark artificial basics and set their values.
        for (ai, &(row, sigma)) in art.iter().enumerate() {
            let var = n_slack_end + ai;
            state.push(VarState::Basic(row));
            let r = resid[row];
            let s_val = x[n_struct + row];
            x[var] = (r - s_val) * sigma; // = |gap| ≥ 0
        }
        let mut binv = vec![0.0; m * m];
        for i in 0..m {
            binv[i * m + i] = 1.0;
        }
        // Rows owned by artificials have column σ·e_row; the inverse of the
        // initial basis is diagonal with 1/σ entries.
        for &(row, sigma) in &art {
            binv[row * m + row] = 1.0 / sigma;
        }
        Self {
            opts,
            budget,
            m,
            n_struct,
            n_slack_end,
            n_total,
            cols,
            art,
            lower,
            upper,
            cost,
            rhs,
            state,
            basis,
            x,
            binv,
            pivots_since_refactor: 0,
            stall_count: 0,
        }
    }

    fn col(&self, j: usize) -> ColIter<'_> {
        if j < self.n_struct {
            ColIter::Struct(self.cols[j].iter())
        } else if j < self.n_slack_end {
            ColIter::Single(Some((j - self.n_struct, 1.0)))
        } else {
            let (row, sigma) = self.art[j - self.n_slack_end];
            ColIter::Single(Some((row, sigma)))
        }
    }

    fn phase_cost(&self, j: usize, phase: Phase) -> f64 {
        match phase {
            Phase::One => {
                if j >= self.n_slack_end {
                    1.0
                } else {
                    0.0
                }
            }
            Phase::Two => self.cost[j],
        }
    }

    /// Recomputes the basic variable values `x_B = B^{-1}(b − N x_N)`.
    fn recompute_basics(&mut self) {
        let mut resid = self.rhs.clone();
        for j in 0..self.n_total {
            if matches!(self.state[j], VarState::Basic(_)) {
                continue;
            }
            let xj = self.x[j];
            if xj == 0.0 {
                continue;
            }
            for (i, a) in self.col(j) {
                resid[i] -= a * xj;
            }
        }
        // (clippy: the index here addresses a different vector than the
        // iteration target, so zip-style rewriting does not apply.)
        for i in 0..self.m {
            let row = &self.binv[i * self.m..(i + 1) * self.m];
            let v: f64 = row.iter().zip(&resid).map(|(b, r)| b * r).sum();
            self.x[self.basis[i]] = v;
        }
    }

    /// Rebuilds the basis inverse from scratch by Gauss–Jordan elimination
    /// with partial pivoting.
    fn refactorize(&mut self) -> Result<(), LpError> {
        let m = self.m;
        let mut mat = vec![0.0; m * m];
        for (bi, &var) in self.basis.iter().enumerate() {
            for (i, a) in self.col(var) {
                mat[i * m + bi] = a;
            }
        }
        let mut inv = vec![0.0; m * m];
        for i in 0..m {
            inv[i * m + i] = 1.0;
        }
        for col in 0..m {
            let mut piv_row = col;
            let mut piv_val = mat[col * m + col].abs();
            for r in col + 1..m {
                let v = mat[r * m + col].abs();
                if v > piv_val {
                    piv_val = v;
                    piv_row = r;
                }
            }
            if piv_val < 1e-11 {
                return Err(LpError::SingularBasis);
            }
            if piv_row != col {
                for k in 0..m {
                    mat.swap(piv_row * m + k, col * m + k);
                    inv.swap(piv_row * m + k, col * m + k);
                }
            }
            let p = mat[col * m + col];
            for k in 0..m {
                mat[col * m + k] /= p;
                inv[col * m + k] /= p;
            }
            for r in 0..m {
                if r == col {
                    continue;
                }
                let f = mat[r * m + col];
                if f == 0.0 {
                    continue;
                }
                for k in 0..m {
                    mat[r * m + k] -= f * mat[col * m + k];
                    inv[r * m + k] -= f * inv[col * m + k];
                }
            }
        }
        self.binv = inv;
        self.pivots_since_refactor = 0;
        self.recompute_basics();
        Ok(())
    }

    /// Simplex multipliers `y = B^{-T} c_B` for the given phase.
    fn multipliers(&self, phase: Phase) -> Vec<f64> {
        let mut y = vec![0.0; self.m];
        for (i, &var) in self.basis.iter().enumerate() {
            let c = self.phase_cost(var, phase);
            if c != 0.0 {
                let row = &self.binv[i * self.m..(i + 1) * self.m];
                for (yk, b) in y.iter_mut().zip(row) {
                    *yk += c * b;
                }
            }
        }
        y
    }

    fn reduced_cost(&self, j: usize, y: &[f64], phase: Phase) -> f64 {
        let mut d = self.phase_cost(j, phase);
        for (i, a) in self.col(j) {
            d -= y[i] * a;
        }
        d
    }

    /// Picks an entering variable `(var, direction)`; `None` means optimal
    /// for this phase. Bland mode returns the lowest-index eligible
    /// variable.
    fn price(&self, y: &[f64], phase: Phase, bland: bool) -> Option<(usize, f64)> {
        let tol = self.opts.tol;
        let mut best: Option<(usize, f64, f64)> = None;
        for j in 0..self.n_total {
            if matches!(self.state[j], VarState::Basic(_)) {
                continue;
            }
            // Fixed variables (lo == hi) can never move; pricing them leads
            // to endless zero-length "bound flips".
            if self.upper[j] - self.lower[j] <= 0.0 {
                continue;
            }
            let dir = match self.state[j] {
                VarState::Basic(_) => unreachable!("filtered above"),
                VarState::NbLower => 1.0,
                VarState::NbUpper => -1.0,
                VarState::NbFree => 0.0,
            };
            let d = self.reduced_cost(j, y, phase);
            let (eligible, dir) = if dir == 0.0 {
                if d < -tol {
                    (true, 1.0)
                } else if d > tol {
                    (true, -1.0)
                } else {
                    (false, 0.0)
                }
            } else if dir > 0.0 {
                (d < -tol, 1.0)
            } else {
                (d > tol, -1.0)
            };
            if !eligible {
                continue;
            }
            if bland {
                return Some((j, dir));
            }
            let score = d.abs();
            match best {
                Some((_, _, s)) if s >= score => {}
                _ => best = Some((j, dir, score)),
            }
        }
        best.map(|(j, d, _)| (j, d))
    }

    /// `w = B^{-1} a_j`.
    fn ftran(&self, j: usize) -> Vec<f64> {
        let mut w = vec![0.0; self.m];
        for (r, a) in self.col(j) {
            if a == 0.0 {
                continue;
            }
            for (i, wi) in w.iter_mut().enumerate() {
                *wi += self.binv[i * self.m + r] * a;
            }
        }
        w
    }

    /// Two-pass (Harris) ratio test; under Bland's rule a strict test with
    /// lowest-variable-index tie-breaking is used instead. Returns the step
    /// and blocking row (`None` for a bound flip); `Err(())` when the
    /// direction is unbounded.
    #[allow(clippy::result_unit_err)]
    fn ratio_test(
        &self,
        j: usize,
        dir: f64,
        w: &[f64],
        bland: bool,
    ) -> Result<(f64, Option<usize>), ()> {
        let own = self.upper[j] - self.lower[j];
        let own = if own.is_finite() { own } else { f64::INFINITY };
        let relax = if bland { 0.0 } else { self.opts.tol };
        // Pass 1: relaxed minimum step.
        let mut t_relaxed = own;
        for (i, &wi) in w.iter().enumerate() {
            let delta = -dir * wi;
            if delta.abs() <= 1e-11 {
                continue;
            }
            let var = self.basis[i];
            let v = self.x[var];
            let target = if delta > 0.0 {
                self.upper[var]
            } else {
                self.lower[var]
            };
            if !target.is_finite() {
                continue;
            }
            let ti = (((target - v) / delta) + relax / delta.abs()).max(0.0);
            if ti < t_relaxed {
                t_relaxed = ti;
            }
        }
        if !t_relaxed.is_finite() {
            return Err(());
        }
        // Pass 2: choose the blocking row.
        let mut blocking: Option<usize> = None;
        let mut best_pivot = 0.0f64;
        let mut best_var = usize::MAX;
        let mut t_exact = f64::INFINITY;
        for (i, &wi) in w.iter().enumerate() {
            let delta = -dir * wi;
            if delta.abs() <= 1e-11 {
                continue;
            }
            let var = self.basis[i];
            let v = self.x[var];
            let target = if delta > 0.0 {
                self.upper[var]
            } else {
                self.lower[var]
            };
            if !target.is_finite() {
                continue;
            }
            let ti = ((target - v) / delta).max(0.0);
            if ti > t_relaxed {
                continue;
            }
            if bland {
                // Strictly smallest step; ties broken by variable index.
                if ti < t_exact - 1e-15 || (ti <= t_exact + 1e-15 && var < best_var) {
                    t_exact = ti.min(t_exact);
                    blocking = Some(i);
                    best_var = var;
                }
            } else if wi.abs() > best_pivot {
                best_pivot = wi.abs();
                blocking = Some(i);
                t_exact = ti;
            }
        }
        match blocking {
            Some(_) if t_exact <= own => Ok((t_exact, blocking)),
            _ if own.is_finite() => Ok((own, None)),
            Some(_) => Ok((t_exact, blocking)),
            None => Err(()),
        }
    }

    fn apply_step(&mut self, j: usize, dir: f64, t: f64, w: &[f64]) {
        if t != 0.0 {
            self.x[j] += dir * t;
            for (i, &wi) in w.iter().enumerate() {
                self.x[self.basis[i]] -= dir * t * wi;
            }
        }
    }

    /// Replaces basic row `r` with entering variable `j`, updating the
    /// explicit inverse.
    fn pivot(&mut self, r: usize, j: usize, w: &[f64]) -> Result<(), LpError> {
        let alpha = w[r];
        if alpha.abs() < 1e-10 {
            return Err(LpError::SingularBasis);
        }
        let m = self.m;
        let (before, rest) = self.binv.split_at_mut(r * m);
        let (row_r, after) = rest.split_at_mut(m);
        for v in row_r.iter_mut() {
            *v /= alpha;
        }
        for (i, chunk) in before.chunks_mut(m).enumerate() {
            let f = w[i];
            if f != 0.0 {
                for (c, rr) in chunk.iter_mut().zip(row_r.iter()) {
                    *c -= f * rr;
                }
            }
        }
        for (off, chunk) in after.chunks_mut(m).enumerate() {
            let f = w[r + 1 + off];
            if f != 0.0 {
                for (c, rr) in chunk.iter_mut().zip(row_r.iter()) {
                    *c -= f * rr;
                }
            }
        }
        self.basis[r] = j;
        self.state[j] = VarState::Basic(r);
        self.pivots_since_refactor += 1;
        Ok(())
    }

    /// Objective of the current point under the given phase's costs.
    fn phase_objective(&self, phase: Phase) -> f64 {
        (0..self.n_total)
            .map(|j| self.phase_cost(j, phase) * self.x[j])
            .sum()
    }

    /// Runs the simplex for one phase to optimality.
    fn run_phase(&mut self, phase: Phase) -> Result<SolveStatus, LpError> {
        self.stall_count = 0;
        for _iter in 0..self.opts.max_iters {
            // Budget check every pivot: an exhausted budget aborts the
            // phase immediately (there is no sound partial bound to keep —
            // the current iterate under-estimates the optimum).
            if !self.budget.is_unlimited() && self.budget.exhausted() {
                crate::metrics::LP_BUDGET_EXHAUSTED.inc();
                return Err(LpError::BudgetExceeded);
            }
            crate::chaos::pivot_stall_point();
            crate::metrics::SIMPLEX_PIVOTS.inc();
            if self.pivots_since_refactor >= self.opts.refactor_every {
                self.refactorize()?;
            }
            let bland = self.stall_count >= self.opts.stall_threshold;
            let y = self.multipliers(phase);
            let Some((j, dir)) = self.price(&y, phase, bland) else {
                return Ok(SolveStatus::Optimal);
            };
            let w = self.ftran(j);
            let (t, blocking) = match self.ratio_test(j, dir, &w, bland) {
                Ok(res) => res,
                Err(()) => return Ok(SolveStatus::Unbounded),
            };
            if t <= 1e-11 {
                self.stall_count += 1;
            } else {
                self.stall_count = 0;
            }
            self.apply_step(j, dir, t, &w);
            match blocking {
                None => {
                    self.state[j] = if dir > 0.0 {
                        VarState::NbUpper
                    } else {
                        VarState::NbLower
                    };
                    self.x[j] = if dir > 0.0 {
                        self.upper[j]
                    } else {
                        self.lower[j]
                    };
                }
                Some(r) => {
                    let leaving = self.basis[r];
                    let lv = self.x[leaving];
                    let to_upper =
                        (lv - self.upper[leaving]).abs() <= (lv - self.lower[leaving]).abs();
                    self.state[leaving] = if to_upper && self.upper[leaving].is_finite() {
                        VarState::NbUpper
                    } else if self.lower[leaving].is_finite() {
                        VarState::NbLower
                    } else if self.upper[leaving].is_finite() {
                        VarState::NbUpper
                    } else {
                        VarState::NbFree
                    };
                    self.x[leaving] = match self.state[leaving] {
                        VarState::NbUpper => self.upper[leaving],
                        VarState::NbLower => self.lower[leaving],
                        _ => lv,
                    };
                    self.pivot(r, j, &w)?;
                    if self.pivots_since_refactor.is_multiple_of(64) {
                        self.recompute_basics();
                    }
                }
            }
        }
        Err(LpError::IterationLimit {
            limit: self.opts.max_iters,
        })
    }

    fn run(&mut self) -> Result<SolveStatus, LpError> {
        if !self.art.is_empty() {
            match self.run_phase(Phase::One)? {
                SolveStatus::Optimal => {}
                // Phase 1 is bounded below by 0, so an "unbounded" outcome
                // signals numerical breakdown.
                _ => return Err(LpError::SingularBasis),
            }
            self.recompute_basics();
            if self.phase_objective(Phase::One) > self.opts.tol * 10.0 {
                return Ok(SolveStatus::Infeasible);
            }
            // Pin the artificials to zero for phase 2.
            for ai in 0..self.art.len() {
                let var = self.n_slack_end + ai;
                self.upper[var] = 0.0;
                if !matches!(self.state[var], VarState::Basic(_)) {
                    self.state[var] = VarState::NbLower;
                    self.x[var] = 0.0;
                }
            }
        }
        self.run_phase(Phase::Two)
    }

    fn objective_value(&self, problem: &LpProblem) -> f64 {
        problem.objective.eval(&self.x[..self.n_struct])
    }
}

/// Solves `problem` with the bounded-variable two-phase simplex.
///
/// # Errors
///
/// Returns an [`LpError`] on iteration limits or numerical breakdown;
/// infeasible/unbounded problems are reported through [`Solution::status`],
/// not as errors.
pub(crate) fn solve(
    problem: &LpProblem,
    opts: &SimplexOptions,
    budget: &Budget<'_>,
) -> Result<Solution, LpError> {
    for (i, &(lo, hi)) in problem.bounds.iter().enumerate() {
        if lo > hi {
            return Err(LpError::InvalidModel(format!(
                "variable {i} has inverted bounds"
            )));
        }
    }
    crate::metrics::LP_SOLVES.inc();
    let _solve_timer = raven_obs::Timer::start(&crate::metrics::LP_SOLVE_SECONDS);
    // Presolve on a private copy: row removal and bound tightening preserve
    // the feasible set, so the optimum is unchanged while the tableau
    // shrinks (often substantially inside branch & bound).
    let presolved;
    let problem = if opts.presolve_rounds > 0 && !problem.rows.is_empty() {
        let mut copy = problem.clone();
        let report = crate::presolve::presolve(&mut copy, opts.presolve_rounds);
        crate::metrics::PRESOLVE_ROWS_REMOVED.add(report.removed_rows as u64);
        crate::metrics::PRESOLVE_BOUNDS_TIGHTENED.add(report.tightened_bounds as u64);
        if report.infeasible {
            return Ok(Solution {
                status: SolveStatus::Infeasible,
                objective: 0.0,
                values: Vec::new(),
                duals: Vec::new(),
            });
        }
        presolved = copy;
        &presolved
    } else {
        problem
    };
    if problem.rows.is_empty() {
        return Ok(solve_box_only(problem));
    }
    let mut tableau = Tableau::new(problem, opts, budget);
    let status = tableau.run()?;
    match status {
        SolveStatus::Optimal => {
            tableau.recompute_basics();
            // Row duals in the user's orientation: the internal problem is
            // always a minimization (costs negated for Maximize), so the
            // user-facing shadow price flips sign for Maximize. Only
            // reported when presolve did not drop rows (alignment).
            let duals = if problem.rows.len() == tableau.m {
                let sign = match problem.direction {
                    Direction::Minimize => 1.0,
                    Direction::Maximize => -1.0,
                };
                tableau
                    .multipliers(Phase::Two)
                    .into_iter()
                    .map(|y| sign * y)
                    .collect()
            } else {
                Vec::new()
            };
            Ok(Solution {
                status,
                objective: tableau.objective_value(problem),
                values: tableau.x[..tableau.n_struct].to_vec(),
                duals,
            })
        }
        _ => Ok(Solution {
            status,
            objective: 0.0,
            values: Vec::new(),
            duals: Vec::new(),
        }),
    }
}

/// Optimizes a problem with no constraints: each variable independently
/// moves to the bound favoured by its objective coefficient.
fn solve_box_only(problem: &LpProblem) -> Solution {
    let mut x: Vec<f64> = problem
        .bounds
        .iter()
        .map(|&(lo, hi)| {
            if lo.is_finite() {
                lo
            } else if hi.is_finite() {
                hi
            } else {
                0.0
            }
        })
        .collect();
    let sign = match problem.direction {
        Direction::Minimize => 1.0,
        Direction::Maximize => -1.0,
    };
    for &(v, c) in problem.objective.terms() {
        let (lo, hi) = problem.bounds[v.0];
        let eff = sign * c;
        let target = if eff > 0.0 {
            lo
        } else if eff < 0.0 {
            hi
        } else {
            continue;
        };
        if !target.is_finite() {
            return Solution {
                status: SolveStatus::Unbounded,
                objective: 0.0,
                values: Vec::new(),
                duals: Vec::new(),
            };
        }
        x[v.0] = target;
    }
    let obj = problem.objective.eval(&x);
    Solution {
        status: SolveStatus::Optimal,
        objective: obj,
        values: x,
        duals: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LinExpr, LpProblem};

    fn expr(terms: &[(crate::VarId, f64)]) -> LinExpr {
        terms.iter().map(|&(v, c)| (v, c)).collect()
    }

    #[test]
    fn simple_maximization() {
        // Classic: max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 → 36.
        let mut p = LpProblem::new();
        let x = p.add_var(0.0, f64::INFINITY);
        let y = p.add_var(0.0, f64::INFINITY);
        p.add_constraint(expr(&[(x, 1.0)]), Sense::Le, 4.0);
        p.add_constraint(expr(&[(y, 2.0)]), Sense::Le, 12.0);
        p.add_constraint(expr(&[(x, 3.0), (y, 2.0)]), Sense::Le, 18.0);
        p.set_objective(Direction::Maximize, expr(&[(x, 3.0), (y, 5.0)]));
        let sol = p.solve().unwrap();
        assert!(sol.is_optimal());
        assert!((sol.objective - 36.0).abs() < 1e-6, "{}", sol.objective);
        assert!((sol.value(x) - 2.0).abs() < 1e-6);
        assert!((sol.value(y) - 6.0).abs() < 1e-6);
    }

    #[test]
    fn equality_constraints_work() {
        // min x + y s.t. x + y = 2, x - y = 0 → x = y = 1.
        let mut p = LpProblem::new();
        let x = p.add_var(f64::NEG_INFINITY, f64::INFINITY);
        let y = p.add_var(f64::NEG_INFINITY, f64::INFINITY);
        p.add_constraint(expr(&[(x, 1.0), (y, 1.0)]), Sense::Eq, 2.0);
        p.add_constraint(expr(&[(x, 1.0), (y, -1.0)]), Sense::Eq, 0.0);
        p.set_objective(Direction::Minimize, expr(&[(x, 1.0), (y, 1.0)]));
        let sol = p.solve().unwrap();
        assert!(sol.is_optimal());
        assert!((sol.value(x) - 1.0).abs() < 1e-7);
        assert!((sol.value(y) - 1.0).abs() < 1e-7);
    }

    #[test]
    fn detects_infeasible() {
        let mut p = LpProblem::new();
        let x = p.add_var(0.0, 1.0);
        p.add_constraint(expr(&[(x, 1.0)]), Sense::Ge, 2.0);
        let sol = p.solve().unwrap();
        assert_eq!(sol.status, SolveStatus::Infeasible);
    }

    #[test]
    fn detects_unbounded() {
        let mut p = LpProblem::new();
        let x = p.add_var(0.0, f64::INFINITY);
        let y = p.add_var(0.0, f64::INFINITY);
        p.add_constraint(expr(&[(x, 1.0), (y, -1.0)]), Sense::Le, 1.0);
        p.set_objective(Direction::Maximize, expr(&[(x, 1.0)]));
        let sol = p.solve().unwrap();
        assert_eq!(sol.status, SolveStatus::Unbounded);
    }

    #[test]
    fn honors_upper_bounds_via_bound_flips() {
        // max x + y s.t. x + y ≤ 1.5, 0 ≤ x,y ≤ 1 → 1.5.
        let mut p = LpProblem::new();
        let x = p.add_var(0.0, 1.0);
        let y = p.add_var(0.0, 1.0);
        p.add_constraint(expr(&[(x, 1.0), (y, 1.0)]), Sense::Le, 1.5);
        p.set_objective(Direction::Maximize, expr(&[(x, 1.0), (y, 1.0)]));
        let sol = p.solve().unwrap();
        assert!((sol.objective - 1.5).abs() < 1e-7);
    }

    #[test]
    fn free_variables_and_negative_bounds() {
        // min y s.t. y ≥ x - 1, y ≥ -x - 1, x free → y = -1 at x = 0.
        let mut p = LpProblem::new();
        let x = p.add_free_var();
        let y = p.add_free_var();
        p.add_constraint(expr(&[(y, 1.0), (x, -1.0)]), Sense::Ge, -1.0);
        p.add_constraint(expr(&[(y, 1.0), (x, 1.0)]), Sense::Ge, -1.0);
        p.set_objective(Direction::Minimize, expr(&[(y, 1.0)]));
        let sol = p.solve().unwrap();
        assert!(sol.is_optimal());
        assert!((sol.objective + 1.0).abs() < 1e-7, "{}", sol.objective);
    }

    #[test]
    fn degenerate_problem_terminates() {
        let mut p = LpProblem::new();
        let x = p.add_var(0.0, 10.0);
        let y = p.add_var(0.0, 10.0);
        for k in 1..20 {
            let kf = k as f64;
            p.add_constraint(expr(&[(x, kf), (y, 1.0)]), Sense::Le, kf);
        }
        p.set_objective(Direction::Maximize, expr(&[(x, 1.0), (y, 1.0)]));
        let sol = p.solve().unwrap();
        assert!(sol.is_optimal());
        assert!(p.is_feasible(&sol.values, 1e-6));
        assert!(sol.objective >= 1.0 - 1e-7);
    }

    #[test]
    fn ge_constraints_with_positive_rhs_need_phase1() {
        // min 2x + 3y s.t. x + y ≥ 4, x + 3y ≥ 6, x, y ≥ 0 → (3, 1): 9.
        let mut p = LpProblem::new();
        let x = p.add_var(0.0, f64::INFINITY);
        let y = p.add_var(0.0, f64::INFINITY);
        p.add_constraint(expr(&[(x, 1.0), (y, 1.0)]), Sense::Ge, 4.0);
        p.add_constraint(expr(&[(x, 1.0), (y, 3.0)]), Sense::Ge, 6.0);
        p.set_objective(Direction::Minimize, expr(&[(x, 2.0), (y, 3.0)]));
        let sol = p.solve().unwrap();
        assert!(sol.is_optimal());
        assert!((sol.objective - 9.0).abs() < 1e-6, "{}", sol.objective);
    }

    #[test]
    fn no_constraints_optimizes_over_box() {
        let mut p = LpProblem::new();
        let x = p.add_var(-2.0, 3.0);
        p.set_objective(Direction::Maximize, expr(&[(x, 2.0)]));
        let sol = p.solve().unwrap();
        assert_eq!(sol.objective, 6.0);
    }

    #[test]
    fn duals_match_the_textbook_example() {
        // max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18: the classic
        // Dantzig example with known shadow prices (0, 3/2, 1).
        let mut p = LpProblem::new();
        let x = p.add_var(0.0, f64::INFINITY);
        let y = p.add_var(0.0, f64::INFINITY);
        p.add_constraint(expr(&[(x, 1.0)]), Sense::Le, 4.0);
        p.add_constraint(expr(&[(y, 2.0)]), Sense::Le, 12.0);
        p.add_constraint(expr(&[(x, 3.0), (y, 2.0)]), Sense::Le, 18.0);
        p.set_objective(Direction::Maximize, expr(&[(x, 3.0), (y, 5.0)]));
        let opts = SimplexOptions {
            presolve_rounds: 0,
            ..SimplexOptions::default()
        };
        let sol = p.solve_with(&opts).unwrap();
        assert_eq!(sol.duals.len(), 3);
        assert!(sol.duals[0].abs() < 1e-7, "{:?}", sol.duals);
        assert!((sol.duals[1] - 1.5).abs() < 1e-7, "{:?}", sol.duals);
        assert!((sol.duals[2] - 1.0).abs() < 1e-7, "{:?}", sol.duals);
        // Strong duality: b·y equals the optimum for this standard-form LP.
        let by = 4.0 * sol.duals[0] + 12.0 * sol.duals[1] + 18.0 * sol.duals[2];
        assert!((by - sol.objective).abs() < 1e-6);
    }

    #[test]
    fn minimization_duals_have_user_orientation() {
        // min 2x s.t. x ≥ 3 → optimum 6; raising the rhs by 1 raises the
        // optimum by 2 → dual = +2.
        let mut p = LpProblem::new();
        let x = p.add_var(0.0, f64::INFINITY);
        p.add_constraint(expr(&[(x, 1.0)]), Sense::Ge, 3.0);
        p.set_objective(Direction::Minimize, expr(&[(x, 2.0)]));
        let opts = SimplexOptions {
            presolve_rounds: 0,
            ..SimplexOptions::default()
        };
        let sol = p.solve_with(&opts).unwrap();
        assert!((sol.objective - 6.0).abs() < 1e-7);
        assert_eq!(sol.duals.len(), 1);
        assert!((sol.duals[0] - 2.0).abs() < 1e-7, "{:?}", sol.duals);
    }

    #[test]
    fn equality_chain_with_free_vars() {
        // A chain of equalities like the verifier's linking rows:
        // d_i = a_i − b_i, with a, b boxed and an objective on d.
        let mut p = LpProblem::new();
        let mut prev = None;
        let mut d_vars = Vec::new();
        for i in 0..10 {
            let a = p.add_var(-1.0, 1.0);
            let b = p.add_var(-1.0, 1.0);
            let d = p.add_free_var();
            p.add_constraint(expr(&[(d, 1.0), (a, -1.0), (b, 1.0)]), Sense::Eq, 0.0);
            if let Some(pd) = prev {
                // Couple adjacent differences: d_i − 0.5 d_{i−1} ≤ 0.2.
                p.add_constraint(expr(&[(d, 1.0), (pd, -0.5)]), Sense::Le, 0.2);
            }
            prev = Some(d);
            d_vars.push((d, 1.0 / (1.0 + i as f64)));
        }
        p.set_objective(Direction::Maximize, expr(&d_vars));
        let sol = p.solve().unwrap();
        assert!(sol.is_optimal());
        assert!(p.is_feasible(&sol.values, 1e-6));
    }
}
