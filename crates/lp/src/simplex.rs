//! Bounded-variable two-phase primal simplex with an explicit dense basis
//! inverse.
//!
//! The solver works on the computational form `A x + I s (+ Σ σ_i t_i) = b`
//! with bounds `l ≤ (x, s) ≤ u`, `t ≥ 0`, where one slack `s_i` is added
//! per row (`≤ → [0, ∞)`, `≥ → (-∞, 0]`, `= → [0, 0]`) and one *artificial*
//! `t_i` is added for every row whose initial slack value violates its
//! bounds. Phase 1 minimizes `Σ t_i` from a feasible basic start (the
//! artificials absorb all residuals); phase 2 pins the artificials to zero
//! and minimizes the user objective. Both phases use **fixed** cost
//! vectors, so Bland's anti-cycling rule applies verbatim when degeneracy
//! stalls progress.
//!
//! Numerical model: plain `f64` with a feasibility/optimality tolerance of
//! `1e-7`, a two-pass Harris-style ratio test that prefers large pivots,
//! and periodic refactorization of the basis inverse. These are the same
//! guarantees a floating-point Gurobi run provides the original RaVeN
//! implementation (see `DESIGN.md`).
//!
//! # Warm starts
//!
//! Branch & bound re-solves a near-identical LP at every node: only
//! variable bounds change between a parent and its children. Bound changes
//! leave every reduced cost untouched, so the parent's optimal basis stays
//! *dual*-feasible in the child and a bounded-variable **dual simplex**
//! ([`Tableau::run_dual`]) restores primal feasibility in a handful of
//! pivots instead of a full two-phase cold start. [`solve_reuse`] drives
//! this: it seeds the tableau from a caller-supplied [`Basis`], runs the
//! dual simplex when the basis is dual-feasible (or primal phase 2 alone
//! when it is primal-feasible, the common case when rows were *appended*),
//! and falls back to a cold start whenever the basis is stale — so results
//! are always certified by the same optimality test as a cold solve, and
//! warm starting can never change a verdict. The pivot row needed by the
//! dual ratio test is assembled from sparse row storage
//! (`Tableau::rows_struct`) rather than by scanning dense columns.

use crate::{Budget, Direction, LpError, LpProblem, Sense, Solution, SolveStatus};

/// Tunable parameters for the simplex solver.
#[derive(Debug, Clone, PartialEq)]
pub struct SimplexOptions {
    /// Feasibility/optimality tolerance.
    pub tol: f64,
    /// Hard iteration limit (per phase).
    pub max_iters: usize,
    /// Refactorize the basis inverse every this many pivots.
    pub refactor_every: usize,
    /// Consecutive degenerate pivots before switching to Bland's rule.
    pub stall_threshold: usize,
    /// Presolve fixpoint rounds before the simplex (0 disables presolve).
    pub presolve_rounds: usize,
}

impl Default for SimplexOptions {
    fn default() -> Self {
        Self {
            tol: 1e-7,
            max_iters: 50_000,
            refactor_every: 300,
            stall_threshold: 60,
            presolve_rounds: 3,
        }
    }
}

/// Per-variable basis status, stripped of row assignments and values: just
/// enough to rebuild a starting point on a problem with the same (or an
/// extended) variable/row layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BState {
    Basic,
    Lower,
    Upper,
    Free,
}

/// A snapshot of an optimal simplex basis: the states of the `n_struct`
/// structural variables followed by the `m` row slacks.
///
/// A basis taken from problem P can seed any problem P' whose first
/// `n_struct` variables and first `m` rows *correspond* to P's (typically:
/// identical layout with tightened bounds, or P plus appended variables
/// and rows). Seeding with an unrelated basis is still *safe* — the warm
/// paths certify optimality on the actual problem and fall back to a cold
/// start when the basis does not help — it just wastes the warm attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Basis {
    /// States of structurals `0..n_struct` then slacks `0..m`.
    pub(crate) states: Vec<BState>,
    pub(crate) n_struct: usize,
    pub(crate) m: usize,
}

impl Basis {
    /// Whether this basis can seed a problem of the given dimensions.
    pub(crate) fn fits(&self, n_struct: usize, m: usize) -> bool {
        self.n_struct <= n_struct && self.m <= m
    }
}

/// Carries an optimal basis between related solves (for example the
/// per-label MILP encodings that share one relaxation, or repeated calls
/// on the same model).
///
/// Purely an accelerator: a stale or mismatched basis only costs the warm
/// attempt, never correctness — every solve is certified by the same
/// optimality conditions as a cold start.
#[derive(Debug, Clone, Default)]
pub struct BasisCache {
    pub(crate) basis: Option<Basis>,
}

impl BasisCache {
    /// An empty cache (first solve will be a cold start).
    pub fn new() -> Self {
        Self::default()
    }

    /// Drops the cached basis.
    pub fn clear(&mut self) {
        self.basis = None;
    }

    /// Whether a basis is currently cached.
    pub fn is_warm(&self) -> bool {
        self.basis.is_some()
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum VarState {
    Basic(usize),
    NbLower,
    NbUpper,
    NbFree,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    One,
    Two,
}

struct Tableau<'a> {
    opts: &'a SimplexOptions,
    budget: &'a Budget<'a>,
    m: usize,
    n_struct: usize,
    /// Structural + slack count (artificial indices start here).
    n_slack_end: usize,
    n_total: usize,
    /// Sparse columns of the structural part of `A`.
    cols: Vec<Vec<(usize, f64)>>,
    /// Sparse rows of the structural part of `A` (`(col, coef)` per row):
    /// the dual ratio test assembles its pivot row from these instead of
    /// scanning every dense column.
    rows_struct: Vec<Vec<(usize, f64)>>,
    /// Artificial columns: `(row, sign)`.
    art: Vec<(usize, f64)>,
    lower: Vec<f64>,
    upper: Vec<f64>,
    /// Phase-2 costs (0 for slacks and artificials).
    cost: Vec<f64>,
    rhs: Vec<f64>,
    state: Vec<VarState>,
    basis: Vec<usize>,
    x: Vec<f64>,
    /// Dense row-major `m x m` basis inverse.
    binv: Vec<f64>,
    pivots_since_refactor: usize,
    stall_count: usize,
}

enum ColIter<'a> {
    Struct(std::slice::Iter<'a, (usize, f64)>),
    Single(Option<(usize, f64)>),
}

impl Iterator for ColIter<'_> {
    type Item = (usize, f64);

    fn next(&mut self) -> Option<(usize, f64)> {
        match self {
            ColIter::Struct(it) => it.next().copied(),
            ColIter::Single(s) => s.take(),
        }
    }
}

impl<'a> Tableau<'a> {
    fn new(problem: &LpProblem, opts: &'a SimplexOptions, budget: &'a Budget<'a>) -> Self {
        let m = problem.rows.len();
        let n_struct = problem.num_vars();
        let n_slack_end = n_struct + m;
        let mut cols = vec![Vec::new(); n_struct];
        let mut rows_struct = vec![Vec::new(); m];
        for (i, row) in problem.rows.iter().enumerate() {
            for &(v, c) in row.expr.terms() {
                cols[v.0].push((i, c));
                rows_struct[i].push((v.0, c));
            }
        }
        let mut lower = Vec::with_capacity(n_slack_end);
        let mut upper = Vec::with_capacity(n_slack_end);
        for &(lo, hi) in &problem.bounds {
            lower.push(lo);
            upper.push(hi);
        }
        for row in &problem.rows {
            match row.sense {
                Sense::Le => {
                    lower.push(0.0);
                    upper.push(f64::INFINITY);
                }
                Sense::Ge => {
                    lower.push(f64::NEG_INFINITY);
                    upper.push(0.0);
                }
                Sense::Eq => {
                    lower.push(0.0);
                    upper.push(0.0);
                }
            }
        }
        // Phase-2 costs (sign-flipped for maximization).
        let sign = match problem.direction {
            Direction::Minimize => 1.0,
            Direction::Maximize => -1.0,
        };
        let mut cost = vec![0.0; n_slack_end];
        for &(v, c) in problem.objective.terms() {
            cost[v.0] += sign * c;
        }
        let rhs: Vec<f64> = problem.rows.iter().map(|r| r.rhs).collect();
        // Nonbasic structurals at their finite bound closest to zero (or 0
        // when free).
        let mut state = Vec::with_capacity(n_slack_end);
        let mut x = vec![0.0; n_slack_end];
        for j in 0..n_struct {
            let (lo, hi) = (lower[j], upper[j]);
            let (s, v) = if lo.is_finite() && hi.is_finite() {
                if lo.abs() <= hi.abs() {
                    (VarState::NbLower, lo)
                } else {
                    (VarState::NbUpper, hi)
                }
            } else if lo.is_finite() {
                (VarState::NbLower, lo)
            } else if hi.is_finite() {
                (VarState::NbUpper, hi)
            } else {
                (VarState::NbFree, 0.0)
            };
            state.push(s);
            x[j] = v;
        }
        // Row residuals with all structurals nonbasic: resid = b − N x_N.
        let mut resid = rhs.clone();
        for (j, xj) in x.iter().enumerate().take(n_struct) {
            if *xj != 0.0 {
                for &(i, a) in &cols[j] {
                    resid[i] -= a * xj;
                }
            }
        }
        // Per row: clamp the slack into its bounds; if the residual exceeds
        // them, an artificial absorbs the remainder and becomes basic,
        // otherwise the slack itself is basic at the residual.
        let mut art: Vec<(usize, f64)> = Vec::new();
        let mut basis = Vec::with_capacity(m);
        for (i, &r) in resid.iter().enumerate() {
            let sj = n_struct + i;
            let (slo, shi) = (lower[sj], upper[sj]);
            if r >= slo - 0.0 && r <= shi + 0.0 {
                state.push(VarState::Basic(i));
                x[sj] = r;
                basis.push(sj);
            } else {
                // Slack parks at its nearest bound; artificial covers the
                // gap with a positive value.
                let s_val = r.clamp(slo, shi);
                let s_val = if s_val.is_finite() { s_val } else { 0.0 };
                state.push(if s_val == shi && shi.is_finite() {
                    VarState::NbUpper
                } else {
                    VarState::NbLower
                });
                x[sj] = s_val;
                let gap = r - s_val;
                let sigma = gap.signum();
                art.push((i, sigma));
                basis.push(n_slack_end + art.len() - 1);
                // Value filled in below once the variable exists.
            }
        }
        let n_total = n_slack_end + art.len();
        for _ in 0..art.len() {
            lower.push(0.0);
            upper.push(f64::INFINITY);
            cost.push(0.0);
            x.push(0.0);
        }
        // Mark artificial basics and set their values.
        for (ai, &(row, sigma)) in art.iter().enumerate() {
            let var = n_slack_end + ai;
            state.push(VarState::Basic(row));
            let r = resid[row];
            let s_val = x[n_struct + row];
            x[var] = (r - s_val) * sigma; // = |gap| ≥ 0
        }
        let mut binv = vec![0.0; m * m];
        for i in 0..m {
            binv[i * m + i] = 1.0;
        }
        // Rows owned by artificials have column σ·e_row; the inverse of the
        // initial basis is diagonal with 1/σ entries.
        for &(row, sigma) in &art {
            binv[row * m + row] = 1.0 / sigma;
        }
        Self {
            opts,
            budget,
            m,
            n_struct,
            n_slack_end,
            n_total,
            cols,
            rows_struct,
            art,
            lower,
            upper,
            cost,
            rhs,
            state,
            basis,
            x,
            binv,
            pivots_since_refactor: 0,
            stall_count: 0,
        }
    }

    fn col(&self, j: usize) -> ColIter<'_> {
        if j < self.n_struct {
            ColIter::Struct(self.cols[j].iter())
        } else if j < self.n_slack_end {
            ColIter::Single(Some((j - self.n_struct, 1.0)))
        } else {
            let (row, sigma) = self.art[j - self.n_slack_end];
            ColIter::Single(Some((row, sigma)))
        }
    }

    fn phase_cost(&self, j: usize, phase: Phase) -> f64 {
        match phase {
            Phase::One => {
                if j >= self.n_slack_end {
                    1.0
                } else {
                    0.0
                }
            }
            Phase::Two => self.cost[j],
        }
    }

    /// Recomputes the basic variable values `x_B = B^{-1}(b − N x_N)`.
    fn recompute_basics(&mut self) {
        let mut resid = self.rhs.clone();
        for j in 0..self.n_total {
            if matches!(self.state[j], VarState::Basic(_)) {
                continue;
            }
            let xj = self.x[j];
            if xj == 0.0 {
                continue;
            }
            for (i, a) in self.col(j) {
                resid[i] -= a * xj;
            }
        }
        // (clippy: the index here addresses a different vector than the
        // iteration target, so zip-style rewriting does not apply.)
        for i in 0..self.m {
            let row = &self.binv[i * self.m..(i + 1) * self.m];
            let v: f64 = row.iter().zip(&resid).map(|(b, r)| b * r).sum();
            self.x[self.basis[i]] = v;
        }
    }

    /// Rebuilds the basis inverse from scratch by Gauss–Jordan elimination
    /// with partial pivoting.
    fn refactorize(&mut self) -> Result<(), LpError> {
        let m = self.m;
        let mut mat = vec![0.0; m * m];
        for (bi, &var) in self.basis.iter().enumerate() {
            for (i, a) in self.col(var) {
                mat[i * m + bi] = a;
            }
        }
        let mut inv = vec![0.0; m * m];
        for i in 0..m {
            inv[i * m + i] = 1.0;
        }
        for col in 0..m {
            let mut piv_row = col;
            let mut piv_val = mat[col * m + col].abs();
            for r in col + 1..m {
                let v = mat[r * m + col].abs();
                if v > piv_val {
                    piv_val = v;
                    piv_row = r;
                }
            }
            if piv_val < 1e-11 {
                return Err(LpError::SingularBasis);
            }
            if piv_row != col {
                for k in 0..m {
                    mat.swap(piv_row * m + k, col * m + k);
                    inv.swap(piv_row * m + k, col * m + k);
                }
            }
            let p = mat[col * m + col];
            for k in 0..m {
                mat[col * m + k] /= p;
                inv[col * m + k] /= p;
            }
            for r in 0..m {
                if r == col {
                    continue;
                }
                let f = mat[r * m + col];
                if f == 0.0 {
                    continue;
                }
                for k in 0..m {
                    mat[r * m + k] -= f * mat[col * m + k];
                    inv[r * m + k] -= f * inv[col * m + k];
                }
            }
        }
        self.binv = inv;
        self.pivots_since_refactor = 0;
        self.recompute_basics();
        Ok(())
    }

    /// Simplex multipliers `y = B^{-T} c_B` for the given phase.
    fn multipliers(&self, phase: Phase) -> Vec<f64> {
        let mut y = vec![0.0; self.m];
        for (i, &var) in self.basis.iter().enumerate() {
            let c = self.phase_cost(var, phase);
            if c != 0.0 {
                let row = &self.binv[i * self.m..(i + 1) * self.m];
                for (yk, b) in y.iter_mut().zip(row) {
                    *yk += c * b;
                }
            }
        }
        y
    }

    fn reduced_cost(&self, j: usize, y: &[f64], phase: Phase) -> f64 {
        let mut d = self.phase_cost(j, phase);
        for (i, a) in self.col(j) {
            d -= y[i] * a;
        }
        d
    }

    /// Picks an entering variable `(var, direction)`; `None` means optimal
    /// for this phase. Bland mode returns the lowest-index eligible
    /// variable.
    fn price(&self, y: &[f64], phase: Phase, bland: bool) -> Option<(usize, f64)> {
        let tol = self.opts.tol;
        let mut best: Option<(usize, f64, f64)> = None;
        for j in 0..self.n_total {
            if matches!(self.state[j], VarState::Basic(_)) {
                continue;
            }
            // Fixed variables (lo == hi) can never move; pricing them leads
            // to endless zero-length "bound flips".
            if self.upper[j] - self.lower[j] <= 0.0 {
                continue;
            }
            let dir = match self.state[j] {
                VarState::Basic(_) => unreachable!("filtered above"),
                VarState::NbLower => 1.0,
                VarState::NbUpper => -1.0,
                VarState::NbFree => 0.0,
            };
            let d = self.reduced_cost(j, y, phase);
            let (eligible, dir) = if dir == 0.0 {
                if d < -tol {
                    (true, 1.0)
                } else if d > tol {
                    (true, -1.0)
                } else {
                    (false, 0.0)
                }
            } else if dir > 0.0 {
                (d < -tol, 1.0)
            } else {
                (d > tol, -1.0)
            };
            if !eligible {
                continue;
            }
            if bland {
                return Some((j, dir));
            }
            let score = d.abs();
            match best {
                Some((_, _, s)) if s >= score => {}
                _ => best = Some((j, dir, score)),
            }
        }
        best.map(|(j, d, _)| (j, d))
    }

    /// `w = B^{-1} a_j`.
    fn ftran(&self, j: usize) -> Vec<f64> {
        let mut w = vec![0.0; self.m];
        for (r, a) in self.col(j) {
            if a == 0.0 {
                continue;
            }
            for (i, wi) in w.iter_mut().enumerate() {
                *wi += self.binv[i * self.m + r] * a;
            }
        }
        w
    }

    /// Two-pass (Harris) ratio test; under Bland's rule a strict test with
    /// lowest-variable-index tie-breaking is used instead. Returns the step
    /// and blocking row (`None` for a bound flip); `Err(())` when the
    /// direction is unbounded.
    #[allow(clippy::result_unit_err)]
    fn ratio_test(
        &self,
        j: usize,
        dir: f64,
        w: &[f64],
        bland: bool,
    ) -> Result<(f64, Option<usize>), ()> {
        let own = self.upper[j] - self.lower[j];
        let own = if own.is_finite() { own } else { f64::INFINITY };
        let relax = if bland { 0.0 } else { self.opts.tol };
        // Pass 1: relaxed minimum step.
        let mut t_relaxed = own;
        for (i, &wi) in w.iter().enumerate() {
            let delta = -dir * wi;
            if delta.abs() <= 1e-11 {
                continue;
            }
            let var = self.basis[i];
            let v = self.x[var];
            let target = if delta > 0.0 {
                self.upper[var]
            } else {
                self.lower[var]
            };
            if !target.is_finite() {
                continue;
            }
            let ti = (((target - v) / delta) + relax / delta.abs()).max(0.0);
            if ti < t_relaxed {
                t_relaxed = ti;
            }
        }
        if !t_relaxed.is_finite() {
            return Err(());
        }
        // Pass 2: choose the blocking row.
        let mut blocking: Option<usize> = None;
        let mut best_pivot = 0.0f64;
        let mut best_var = usize::MAX;
        let mut t_exact = f64::INFINITY;
        for (i, &wi) in w.iter().enumerate() {
            let delta = -dir * wi;
            if delta.abs() <= 1e-11 {
                continue;
            }
            let var = self.basis[i];
            let v = self.x[var];
            let target = if delta > 0.0 {
                self.upper[var]
            } else {
                self.lower[var]
            };
            if !target.is_finite() {
                continue;
            }
            let ti = ((target - v) / delta).max(0.0);
            if ti > t_relaxed {
                continue;
            }
            if bland {
                // Strictly smallest step; ties broken by variable index.
                if ti < t_exact - 1e-15 || (ti <= t_exact + 1e-15 && var < best_var) {
                    t_exact = ti.min(t_exact);
                    blocking = Some(i);
                    best_var = var;
                }
            } else if wi.abs() > best_pivot {
                best_pivot = wi.abs();
                blocking = Some(i);
                t_exact = ti;
            }
        }
        match blocking {
            Some(_) if t_exact <= own => Ok((t_exact, blocking)),
            _ if own.is_finite() => Ok((own, None)),
            Some(_) => Ok((t_exact, blocking)),
            None => Err(()),
        }
    }

    fn apply_step(&mut self, j: usize, dir: f64, t: f64, w: &[f64]) {
        if t != 0.0 {
            self.x[j] += dir * t;
            for (i, &wi) in w.iter().enumerate() {
                self.x[self.basis[i]] -= dir * t * wi;
            }
        }
    }

    /// Replaces basic row `r` with entering variable `j`, updating the
    /// explicit inverse.
    fn pivot(&mut self, r: usize, j: usize, w: &[f64]) -> Result<(), LpError> {
        let alpha = w[r];
        if alpha.abs() < 1e-10 {
            return Err(LpError::SingularBasis);
        }
        let m = self.m;
        let (before, rest) = self.binv.split_at_mut(r * m);
        let (row_r, after) = rest.split_at_mut(m);
        for v in row_r.iter_mut() {
            *v /= alpha;
        }
        for (i, chunk) in before.chunks_mut(m).enumerate() {
            let f = w[i];
            if f != 0.0 {
                for (c, rr) in chunk.iter_mut().zip(row_r.iter()) {
                    *c -= f * rr;
                }
            }
        }
        for (off, chunk) in after.chunks_mut(m).enumerate() {
            let f = w[r + 1 + off];
            if f != 0.0 {
                for (c, rr) in chunk.iter_mut().zip(row_r.iter()) {
                    *c -= f * rr;
                }
            }
        }
        self.basis[r] = j;
        self.state[j] = VarState::Basic(r);
        self.pivots_since_refactor += 1;
        Ok(())
    }

    /// Objective of the current point under the given phase's costs.
    fn phase_objective(&self, phase: Phase) -> f64 {
        (0..self.n_total)
            .map(|j| self.phase_cost(j, phase) * self.x[j])
            .sum()
    }

    /// Runs the simplex for one phase to optimality.
    fn run_phase(&mut self, phase: Phase) -> Result<SolveStatus, LpError> {
        self.stall_count = 0;
        for _iter in 0..self.opts.max_iters {
            // Budget check every pivot: an exhausted budget aborts the
            // phase immediately (there is no sound partial bound to keep —
            // the current iterate under-estimates the optimum).
            if !self.budget.is_unlimited() && self.budget.exhausted() {
                crate::metrics::LP_BUDGET_EXHAUSTED.inc();
                return Err(LpError::BudgetExceeded);
            }
            crate::chaos::pivot_stall_point();
            crate::metrics::SIMPLEX_PIVOTS.inc();
            if self.pivots_since_refactor >= self.opts.refactor_every {
                self.refactorize()?;
            }
            let bland = self.stall_count >= self.opts.stall_threshold;
            let y = self.multipliers(phase);
            let Some((j, dir)) = self.price(&y, phase, bland) else {
                return Ok(SolveStatus::Optimal);
            };
            let w = self.ftran(j);
            let (t, blocking) = match self.ratio_test(j, dir, &w, bland) {
                Ok(res) => res,
                Err(()) => return Ok(SolveStatus::Unbounded),
            };
            if t <= 1e-11 {
                self.stall_count += 1;
            } else {
                self.stall_count = 0;
            }
            self.apply_step(j, dir, t, &w);
            match blocking {
                None => {
                    self.state[j] = if dir > 0.0 {
                        VarState::NbUpper
                    } else {
                        VarState::NbLower
                    };
                    self.x[j] = if dir > 0.0 {
                        self.upper[j]
                    } else {
                        self.lower[j]
                    };
                }
                Some(r) => {
                    let leaving = self.basis[r];
                    let lv = self.x[leaving];
                    let to_upper =
                        (lv - self.upper[leaving]).abs() <= (lv - self.lower[leaving]).abs();
                    self.state[leaving] = if to_upper && self.upper[leaving].is_finite() {
                        VarState::NbUpper
                    } else if self.lower[leaving].is_finite() {
                        VarState::NbLower
                    } else if self.upper[leaving].is_finite() {
                        VarState::NbUpper
                    } else {
                        VarState::NbFree
                    };
                    self.x[leaving] = match self.state[leaving] {
                        VarState::NbUpper => self.upper[leaving],
                        VarState::NbLower => self.lower[leaving],
                        _ => lv,
                    };
                    self.pivot(r, j, &w)?;
                    if self.pivots_since_refactor.is_multiple_of(64) {
                        self.recompute_basics();
                    }
                }
            }
        }
        Err(LpError::IterationLimit {
            limit: self.opts.max_iters,
        })
    }

    fn run(&mut self) -> Result<SolveStatus, LpError> {
        if !self.art.is_empty() {
            match self.run_phase(Phase::One)? {
                SolveStatus::Optimal => {}
                // Phase 1 is bounded below by 0, so an "unbounded" outcome
                // signals numerical breakdown.
                _ => return Err(LpError::SingularBasis),
            }
            self.recompute_basics();
            if self.phase_objective(Phase::One) > self.opts.tol * 10.0 {
                return Ok(SolveStatus::Infeasible);
            }
            // Pin the artificials to zero for phase 2.
            for ai in 0..self.art.len() {
                let var = self.n_slack_end + ai;
                self.upper[var] = 0.0;
                if !matches!(self.state[var], VarState::Basic(_)) {
                    self.state[var] = VarState::NbLower;
                    self.x[var] = 0.0;
                }
            }
        }
        self.run_phase(Phase::Two)
    }

    fn objective_value(&self, problem: &LpProblem) -> f64 {
        problem.objective.eval(&self.x[..self.n_struct])
    }

    /// Builds a tableau seeded from a previously extracted basis instead of
    /// the all-slack cold start. Variables and rows beyond the basis prefix
    /// get the cold-start defaults (nonbasic at nearest bound / slack
    /// basic). `None` when the basis cannot form a full, factorizable basis
    /// for this problem — the caller falls back to a cold start.
    fn with_basis(
        problem: &LpProblem,
        opts: &'a SimplexOptions,
        budget: &'a Budget<'a>,
        warm: &Basis,
    ) -> Option<Self> {
        let m = problem.rows.len();
        let n_struct = problem.num_vars();
        if !warm.fits(n_struct, m) {
            return None;
        }
        let n_slack_end = n_struct + m;
        let mut cols = vec![Vec::new(); n_struct];
        let mut rows_struct = vec![Vec::new(); m];
        for (i, row) in problem.rows.iter().enumerate() {
            for &(v, c) in row.expr.terms() {
                cols[v.0].push((i, c));
                rows_struct[i].push((v.0, c));
            }
        }
        let mut lower = Vec::with_capacity(n_slack_end);
        let mut upper = Vec::with_capacity(n_slack_end);
        for &(lo, hi) in &problem.bounds {
            lower.push(lo);
            upper.push(hi);
        }
        for row in &problem.rows {
            match row.sense {
                Sense::Le => {
                    lower.push(0.0);
                    upper.push(f64::INFINITY);
                }
                Sense::Ge => {
                    lower.push(f64::NEG_INFINITY);
                    upper.push(0.0);
                }
                Sense::Eq => {
                    lower.push(0.0);
                    upper.push(0.0);
                }
            }
        }
        let sign = match problem.direction {
            Direction::Minimize => 1.0,
            Direction::Maximize => -1.0,
        };
        let mut cost = vec![0.0; n_slack_end];
        for &(v, c) in problem.objective.terms() {
            cost[v.0] += sign * c;
        }
        let rhs: Vec<f64> = problem.rows.iter().map(|r| r.rhs).collect();
        let mut state = vec![VarState::NbFree; n_slack_end];
        let mut x = vec![0.0; n_slack_end];
        let mut basis: Vec<usize> = Vec::with_capacity(m);
        for j in 0..n_slack_end {
            // Warm prefix state: structurals share indices; slack i of the
            // warm problem maps to slack i here. New rows start slack-basic
            // (their slack absorbs the row residual), new structurals get
            // the cold-start parking rule.
            let warm_state = if j < n_struct {
                (j < warm.n_struct).then(|| warm.states[j])
            } else {
                let i = j - n_struct;
                if i < warm.m {
                    Some(warm.states[warm.n_struct + i])
                } else {
                    Some(BState::Basic)
                }
            };
            if warm_state == Some(BState::Basic) {
                basis.push(j);
                continue; // state assigned below once the row index is known
            }
            let (s, v) = park(warm_state, lower[j], upper[j]);
            state[j] = s;
            x[j] = v;
        }
        if basis.len() != m {
            return None;
        }
        for (i, &var) in basis.iter().enumerate() {
            state[var] = VarState::Basic(i);
        }
        let mut binv = vec![0.0; m * m];
        for i in 0..m {
            binv[i * m + i] = 1.0;
        }
        let mut tab = Self {
            opts,
            budget,
            m,
            n_struct,
            n_slack_end,
            n_total: n_slack_end,
            cols,
            rows_struct,
            art: Vec::new(),
            lower,
            upper,
            cost,
            rhs,
            state,
            basis,
            x,
            binv,
            pivots_since_refactor: 0,
            stall_count: 0,
        };
        // A numerically singular warm basis is simply not reusable.
        tab.refactorize().ok()?;
        Some(tab)
    }

    /// Pivots zero-valued basic artificials out of an optimal basis so it
    /// is expressible over structurals and slacks alone — the form
    /// [`Tableau::extract_basis`] needs for warm-start reuse. Phase 1
    /// routinely leaves artificials basic at level 0 on equality rows, and
    /// such a basis would otherwise be unreusable.
    ///
    /// Only degeneracy-preserving swaps are taken: the entering column
    /// must have a ~zero phase-2 reduced cost, so the multipliers — and
    /// with them the reported duals — are unchanged, and the solution
    /// point does not move (the leaving artificial sits at 0). An
    /// artificial whose row admits no such column (a linearly dependent
    /// row) is left basic; extraction then skips the basis, which only
    /// costs the warm start, never correctness.
    fn drive_out_artificials(&mut self) {
        if !self.basis.iter().any(|&v| v >= self.n_slack_end) {
            return;
        }
        let tol = self.opts.tol * 10.0;
        let y = self.multipliers(Phase::Two);
        for r in 0..self.m {
            let leaving = self.basis[r];
            if leaving < self.n_slack_end || self.x[leaving].abs() > tol {
                continue;
            }
            // Row r of the inverse gives every candidate's pivot element
            // cheaply: alpha_j = rho · col_j.
            let rho = &self.binv[r * self.m..(r + 1) * self.m];
            let mut pick: Option<(usize, f64)> = None;
            for j in 0..self.n_slack_end {
                if matches!(self.state[j], VarState::Basic(_)) {
                    continue;
                }
                let alpha: f64 = self.col(j).map(|(i, a)| rho[i] * a).sum();
                if alpha.abs() <= 1e-7 || self.reduced_cost(j, &y, Phase::Two).abs() > tol {
                    continue;
                }
                if pick.is_none_or(|(_, best)| alpha.abs() > best) {
                    pick = Some((j, alpha.abs()));
                }
            }
            let Some((j, _)) = pick else { continue };
            let w = self.ftran(j);
            if w[r].abs() < 1e-10 || self.pivot(r, j, &w).is_err() {
                continue;
            }
            self.state[leaving] = VarState::NbLower;
            self.x[leaving] = 0.0;
        }
    }

    /// Snapshot of the current basis for reuse; `None` while an artificial
    /// is still basic (such a basis has no meaning outside this solve).
    fn extract_basis(&self) -> Option<Basis> {
        if self.basis.iter().any(|&v| v >= self.n_slack_end) {
            return None;
        }
        let states = self.state[..self.n_slack_end]
            .iter()
            .map(|s| match s {
                VarState::Basic(_) => BState::Basic,
                VarState::NbLower => BState::Lower,
                VarState::NbUpper => BState::Upper,
                VarState::NbFree => BState::Free,
            })
            .collect();
        Some(Basis {
            states,
            n_struct: self.n_struct,
            m: self.m,
        })
    }

    /// Whether every nonbasic reduced cost has the sign optimality
    /// requires — the invariant the dual simplex maintains.
    fn dual_feasible(&self) -> bool {
        let tol = self.opts.tol * 10.0;
        let y = self.multipliers(Phase::Two);
        for j in 0..self.n_slack_end {
            if matches!(self.state[j], VarState::Basic(_)) {
                continue;
            }
            // Fixed variables satisfy any reduced-cost sign.
            if self.upper[j] - self.lower[j] <= 0.0 {
                continue;
            }
            let d = self.reduced_cost(j, &y, Phase::Two);
            let ok = match self.state[j] {
                VarState::NbLower => d >= -tol,
                VarState::NbUpper => d <= tol,
                VarState::NbFree => d.abs() <= tol,
                VarState::Basic(_) => unreachable!("filtered above"),
            };
            if !ok {
                return false;
            }
        }
        true
    }

    /// Whether every basic value sits within its bounds (nonbasics are at
    /// bounds by construction).
    fn primal_feasible(&self) -> bool {
        let tol = self.opts.tol * 10.0;
        self.basis
            .iter()
            .all(|&v| self.x[v] >= self.lower[v] - tol && self.x[v] <= self.upper[v] + tol)
    }

    /// Bounded-variable dual simplex: starting from a dual-feasible basis,
    /// repairs primal bound violations one leaving variable at a time while
    /// keeping every reduced cost correctly signed. Converges in a few
    /// pivots when only variable bounds changed since the basis was
    /// optimal.
    fn run_dual(&mut self) -> Result<DualOutcome, LpError> {
        self.stall_count = 0;
        let tol = self.opts.tol;
        let mut alpha = vec![0.0; self.n_slack_end];
        for _iter in 0..self.opts.max_iters {
            if !self.budget.is_unlimited() && self.budget.exhausted() {
                crate::metrics::LP_BUDGET_EXHAUSTED.inc();
                return Err(LpError::BudgetExceeded);
            }
            crate::chaos::pivot_stall_point();
            crate::metrics::LP_DUAL_PIVOTS.inc();
            if self.pivots_since_refactor >= self.opts.refactor_every {
                self.refactorize()?;
            }
            // Leaving variable: the basic with the largest bound violation.
            let mut leave: Option<(usize, f64, bool)> = None;
            for (i, &var) in self.basis.iter().enumerate() {
                let v = self.x[var];
                if v > self.upper[var] + tol {
                    let viol = v - self.upper[var];
                    if leave.is_none_or(|(_, bv, _)| viol > bv) {
                        leave = Some((i, viol, true));
                    }
                } else if v < self.lower[var] - tol {
                    let viol = self.lower[var] - v;
                    if leave.is_none_or(|(_, bv, _)| viol > bv) {
                        leave = Some((i, viol, false));
                    }
                }
            }
            let Some((r, _, above)) = leave else {
                return Ok(DualOutcome::PrimalFeasible);
            };
            if self.stall_count >= self.opts.stall_threshold {
                // Degenerate loop: hand the node to the cold solver rather
                // than risk cycling.
                return Ok(DualOutcome::Stalled);
            }
            // Pivot row over the nonbasic columns, assembled sparsely:
            // alpha = (row r of B^-1) · A restricted to structurals+slacks.
            let m = self.m;
            let rho = &self.binv[r * m..(r + 1) * m];
            alpha.fill(0.0);
            for (i, &ri) in rho.iter().enumerate() {
                if ri == 0.0 {
                    continue;
                }
                for &(col, coef) in &self.rows_struct[i] {
                    alpha[col] += ri * coef;
                }
                alpha[self.n_struct + i] += ri;
            }
            let y = self.multipliers(Phase::Two);
            let sigma = if above { 1.0 } else { -1.0 };
            // Entering variable: dual ratio test. Eligibility keeps the
            // entering step's primal direction consistent with removing the
            // violation; the min ratio |d/alpha| keeps every other reduced
            // cost correctly signed after the pivot. Ties prefer the
            // largest pivot magnitude for stability.
            let mut best: Option<(usize, f64, f64)> = None;
            for (j, &aj) in alpha.iter().enumerate() {
                if matches!(self.state[j], VarState::Basic(_)) {
                    continue;
                }
                if self.upper[j] - self.lower[j] <= 0.0 {
                    continue;
                }
                let a = sigma * aj;
                let from_lower = matches!(self.state[j], VarState::NbLower | VarState::NbFree);
                let from_upper = matches!(self.state[j], VarState::NbUpper | VarState::NbFree);
                let eligible = (from_lower && a > 1e-9) || (from_upper && a < -1e-9);
                if !eligible {
                    continue;
                }
                let d = self.reduced_cost(j, &y, Phase::Two);
                // Dual feasibility bounds d's sign; clamp the tolerance
                // residue so ratios stay non-negative.
                let ratio = (d / a).max(0.0);
                let better = match best {
                    None => true,
                    Some((_, br, ba)) => {
                        ratio < br - 1e-12 || (ratio <= br + 1e-12 && a.abs() > ba)
                    }
                };
                if better {
                    best = Some((j, ratio, a.abs()));
                }
            }
            let Some((j, _, _)) = best else {
                // Dual unbounded ⇒ primal infeasible. The caller re-proves
                // this with a cold phase-1 run before trusting it: a false
                // infeasible here (tolerance artifact) would unsoundly
                // prune a branch-and-bound node.
                return Ok(DualOutcome::Infeasible);
            };
            let w = self.ftran(j);
            let piv = w[r];
            if piv.abs() < 1e-10 {
                return Err(LpError::SingularBasis);
            }
            let leaving = self.basis[r];
            let bound = if above {
                self.upper[leaving]
            } else {
                self.lower[leaving]
            };
            let t = (self.x[leaving] - bound) / piv;
            if t.abs() <= 1e-11 {
                self.stall_count += 1;
            } else {
                self.stall_count = 0;
            }
            // Primal step: entering moves by t, basics absorb, the leaving
            // variable lands exactly on its violated bound.
            self.x[j] += t;
            for (i, &wi) in w.iter().enumerate() {
                if wi != 0.0 {
                    self.x[self.basis[i]] -= wi * t;
                }
            }
            self.state[leaving] = if above {
                VarState::NbUpper
            } else {
                VarState::NbLower
            };
            self.x[leaving] = bound;
            self.pivot(r, j, &w)?;
            if self.pivots_since_refactor.is_multiple_of(64) {
                self.recompute_basics();
            }
        }
        Err(LpError::IterationLimit {
            limit: self.opts.max_iters,
        })
    }

    /// Runs the warm-started solve: dual simplex when the seeded basis is
    /// dual-feasible, primal phase 2 when it is primal-feasible (typical
    /// after appending rows the old optimum satisfies), `Stale` otherwise.
    /// Either path finishes with the primal optimality test, so a `Solved`
    /// outcome carries exactly the certificate a cold start would.
    fn warm_run(&mut self) -> Result<WarmOutcome, LpError> {
        if self.dual_feasible() {
            crate::metrics::LP_WARM_STARTS.inc();
            match self.run_dual()? {
                DualOutcome::PrimalFeasible => self.run_phase(Phase::Two).map(WarmOutcome::Solved),
                DualOutcome::Infeasible | DualOutcome::Stalled => Ok(WarmOutcome::Stale),
            }
        } else if self.primal_feasible() {
            crate::metrics::LP_WARM_STARTS.inc();
            self.run_phase(Phase::Two).map(WarmOutcome::Solved)
        } else {
            Ok(WarmOutcome::Stale)
        }
    }
}

/// Outcome of a dual-simplex run.
enum DualOutcome {
    /// All basics back within bounds: the point is primal- and
    /// dual-feasible, i.e. optimal up to the final pricing pass.
    PrimalFeasible,
    /// No entering column: the dual is unbounded, the primal infeasible
    /// (subject to cold confirmation).
    Infeasible,
    /// Degenerate stall; the basis is not making progress.
    Stalled,
}

/// Outcome of a warm-start attempt.
enum WarmOutcome {
    Solved(SolveStatus),
    /// The seeded basis did not lead anywhere; redo from cold.
    Stale,
}

/// Parking rule for a nonbasic variable: honour the warm state when its
/// bound is finite, otherwise fall back to the cold-start rule (finite
/// bound nearest zero, free at zero).
fn park(warm: Option<BState>, lo: f64, hi: f64) -> (VarState, f64) {
    match warm {
        Some(BState::Lower) if lo.is_finite() => (VarState::NbLower, lo),
        Some(BState::Upper) if hi.is_finite() => (VarState::NbUpper, hi),
        Some(BState::Free) if !lo.is_finite() && !hi.is_finite() => (VarState::NbFree, 0.0),
        _ => {
            if lo.is_finite() && hi.is_finite() {
                if lo.abs() <= hi.abs() {
                    (VarState::NbLower, lo)
                } else {
                    (VarState::NbUpper, hi)
                }
            } else if lo.is_finite() {
                (VarState::NbLower, lo)
            } else if hi.is_finite() {
                (VarState::NbUpper, hi)
            } else {
                (VarState::NbFree, 0.0)
            }
        }
    }
}

fn validate_bounds(problem: &LpProblem) -> Result<(), LpError> {
    for (i, &(lo, hi)) in problem.bounds.iter().enumerate() {
        if lo > hi {
            return Err(LpError::InvalidModel(format!(
                "variable {i} has inverted bounds"
            )));
        }
    }
    Ok(())
}

fn empty_solution(status: SolveStatus) -> Solution {
    Solution {
        status,
        objective: 0.0,
        values: Vec::new(),
        duals: Vec::new(),
        farkas: Vec::new(),
    }
}

/// A finished solve plus the byproducts the callers of the internal entry
/// points need: internal-orientation structural reduced costs (for dual
/// postsolve) and the optimal basis (for warm starts).
struct Solved {
    sol: Solution,
    reduced: Option<Vec<f64>>,
    basis: Option<Basis>,
}

/// Extracts the solution, duals, reduced costs, and basis from a tableau
/// whose run ended with `status`.
fn finish_tableau(mut tableau: Tableau<'_>, problem: &LpProblem, status: SolveStatus) -> Solved {
    match status {
        SolveStatus::Optimal => {
            tableau.drive_out_artificials();
            tableau.recompute_basics();
            // Row duals in the user's orientation: the internal problem is
            // always a minimization (costs negated for Maximize), so the
            // user-facing shadow price flips sign for Maximize.
            let sign = match problem.direction {
                Direction::Minimize => 1.0,
                Direction::Maximize => -1.0,
            };
            let y = tableau.multipliers(Phase::Two);
            let duals = y.iter().map(|&v| sign * v).collect();
            let reduced = (0..tableau.n_struct)
                .map(|j| tableau.reduced_cost(j, &y, Phase::Two))
                .collect();
            let basis = tableau.extract_basis();
            Solved {
                sol: Solution {
                    status,
                    objective: tableau.objective_value(problem),
                    values: tableau.x[..tableau.n_struct].to_vec(),
                    duals,
                    farkas: Vec::new(),
                },
                reduced: Some(reduced),
                basis,
            }
        }
        SolveStatus::Infeasible => {
            // The phase-1 multipliers are a Farkas certificate: with the
            // phase-1 objective strictly positive at its optimum, weak
            // duality gives `yᵀb − sup_box (Aᵀy)ᵀx = phase-1 objective > 0`
            // provided each multiplier respects its row's sign (`≤` rows
            // need `y ≤ 0`, `≥` rows `y ≥ 0`, since the opposite sign lets
            // the row's slack absorb everything). Float noise can leave
            // tol-sized sign violations — clamp those to zero; a large
            // violation means the multipliers do not certify anything, so
            // emit none rather than a bogus ray.
            let y = tableau.multipliers(Phase::One);
            let tol = tableau.opts.tol * 100.0;
            let mut farkas = Vec::with_capacity(y.len());
            let mut usable = y.len() == problem.rows.len();
            for (row, &yi) in problem.rows.iter().zip(&y) {
                let clamped = match row.sense {
                    Sense::Le if yi > 0.0 => {
                        usable &= yi <= tol;
                        0.0
                    }
                    Sense::Ge if yi < 0.0 => {
                        usable &= -yi <= tol;
                        0.0
                    }
                    _ => yi,
                };
                farkas.push(clamped);
            }
            let mut sol = empty_solution(status);
            if usable {
                sol.farkas = farkas;
            }
            Solved {
                sol,
                reduced: None,
                basis: None,
            }
        }
        _ => Solved {
            sol: empty_solution(status),
            reduced: None,
            basis: None,
        },
    }
}

/// Internal reduced costs for a problem with no rows: with no constraints
/// there are no multipliers, so the reduced cost is the (sign-adjusted)
/// objective coefficient itself.
fn box_reduced(problem: &LpProblem) -> Vec<f64> {
    let sign = match problem.direction {
        Direction::Minimize => 1.0,
        Direction::Maximize => -1.0,
    };
    let mut d = vec![0.0; problem.num_vars()];
    for &(v, c) in problem.objective.terms() {
        d[v.0] += sign * c;
    }
    d
}

/// Maps the duals of a presolved problem back onto the original row set.
///
/// Kept rows copy their dual through `kept_rows`. A dropped *singleton* row
/// became a variable bound; when that bound is active at the optimum, the
/// row's shadow price is the variable's reduced cost rescaled by the row
/// coefficient (`∂obj/∂rhs = d / c` via `x = rhs / c`). Redundant rows are
/// slack at the optimum and correctly keep a zero dual. Each variable side
/// attributes at most one row — further coincident rows are degenerate
/// alternatives with dual zero.
fn postsolve_duals(
    original: &LpProblem,
    report: &crate::presolve::PresolveReport,
    sol: &Solution,
    reduced: &[f64],
    tol: f64,
) -> Vec<f64> {
    let sign = match original.direction {
        Direction::Minimize => 1.0,
        Direction::Maximize => -1.0,
    };
    let mut duals = vec![0.0; original.rows.len()];
    for (i, &orig) in report.kept_rows.iter().enumerate() {
        if let Some(&d) = sol.duals.get(i) {
            duals[orig] = d;
        }
    }
    let mut used_lo = vec![false; original.num_vars()];
    let mut used_hi = vec![false; original.num_vars()];
    for ds in &report.dropped_singletons {
        let v = ds.var;
        let d = reduced.get(v).copied().unwrap_or(0.0);
        if d.abs() <= tol {
            continue; // bound not binding the objective: dual 0
        }
        let target = ds.rhs / ds.coef;
        let scale = 1.0_f64.max(target.abs());
        if (sol.values[v] - target).abs() > tol * 16.0 * scale {
            continue; // row not tight at the optimum: dual 0
        }
        // Which side of the variable's domain this row constrains.
        let upper_side = matches!(
            (ds.sense, ds.coef > 0.0),
            (Sense::Le, true) | (Sense::Ge, false)
        );
        let claimed = match ds.sense {
            Sense::Eq => {
                if used_lo[v] || used_hi[v] {
                    false
                } else {
                    used_lo[v] = true;
                    used_hi[v] = true;
                    true
                }
            }
            // An active upper bound has d ≤ 0 at an internal minimum (and
            // symmetrically for lower); a mismatched sign means the other
            // side is the active one.
            _ if upper_side => {
                if d > 0.0 || used_hi[v] {
                    false
                } else {
                    used_hi[v] = true;
                    true
                }
            }
            _ => {
                if d < 0.0 || used_lo[v] {
                    false
                } else {
                    used_lo[v] = true;
                    true
                }
            }
        };
        if claimed {
            duals[ds.row] = sign * d / ds.coef;
        }
    }
    duals
}

/// Solves `problem` with the bounded-variable two-phase simplex.
///
/// # Errors
///
/// Returns an [`LpError`] on iteration limits or numerical breakdown;
/// infeasible/unbounded problems are reported through [`Solution::status`],
/// not as errors.
pub(crate) fn solve(
    problem: &LpProblem,
    opts: &SimplexOptions,
    budget: &Budget<'_>,
) -> Result<Solution, LpError> {
    validate_bounds(problem)?;
    crate::metrics::LP_SOLVES.inc();
    let _solve_timer = raven_obs::Timer::start(&crate::metrics::LP_SOLVE_SECONDS);
    if crate::chaos::take_forced_unbounded() {
        return Ok(empty_solution(SolveStatus::Unbounded));
    }
    // Presolve on a private copy: row removal and bound tightening preserve
    // the feasible set, so the optimum is unchanged while the tableau
    // shrinks (often substantially inside branch & bound).
    let presolved;
    let mut report = None;
    let reduced_problem = if opts.presolve_rounds > 0 && !problem.rows.is_empty() {
        let mut copy = problem.clone();
        let rep = crate::presolve::presolve(&mut copy, opts.presolve_rounds, opts.tol);
        crate::metrics::PRESOLVE_ROWS_REMOVED.add(rep.removed_rows as u64);
        crate::metrics::PRESOLVE_BOUNDS_TIGHTENED.add(rep.tightened_bounds as u64);
        if rep.infeasible {
            return Ok(empty_solution(SolveStatus::Infeasible));
        }
        presolved = copy;
        report = Some(rep);
        &presolved
    } else {
        problem
    };
    let (sol, reduced) = if reduced_problem.rows.is_empty() {
        let sol = solve_box_only(reduced_problem);
        let reduced = (sol.status == SolveStatus::Optimal).then(|| box_reduced(reduced_problem));
        (sol, reduced)
    } else {
        let mut tableau = Tableau::new(reduced_problem, opts, budget);
        let status = tableau.run()?;
        let solved = finish_tableau(tableau, reduced_problem, status);
        (solved.sol, solved.reduced)
    };
    // Postsolve: duals are reported against the *original* row set, so
    // `duals.len() == rows.len()` whenever the status is Optimal.
    let mut sol = sol;
    if sol.status == SolveStatus::Optimal {
        if let (Some(rep), Some(rc)) = (&report, &reduced) {
            sol.duals = postsolve_duals(problem, rep, &sol, rc, opts.tol);
        }
    }
    Ok(sol)
}

/// Solves `problem`, optionally seeding the simplex from `warm`, and
/// returns the optimal basis for the caller to reuse on the next related
/// solve. Never presolves: basis reuse needs the row/variable layout to
/// stay exactly as the caller built it (branch & bound presolves once at
/// the root instead — see `milp.rs`).
///
/// A warm basis is a pure accelerator: when it is dual- or primal-feasible
/// the solve finishes in few pivots, and in every other case (stale,
/// singular, stalled, dual-detected infeasibility) the function re-runs the
/// ordinary cold start, so the result carries exactly the same certificate
/// as [`solve`] with presolve disabled.
///
/// # Errors
///
/// Same contract as [`solve`].
pub(crate) fn solve_reuse(
    problem: &LpProblem,
    opts: &SimplexOptions,
    budget: &Budget<'_>,
    warm: Option<&Basis>,
) -> Result<(Solution, Option<Basis>), LpError> {
    validate_bounds(problem)?;
    crate::metrics::LP_SOLVES.inc();
    let _solve_timer = raven_obs::Timer::start(&crate::metrics::LP_SOLVE_SECONDS);
    if crate::chaos::take_forced_unbounded() {
        return Ok((empty_solution(SolveStatus::Unbounded), None));
    }
    if problem.rows.is_empty() {
        return Ok((solve_box_only(problem), None));
    }
    if let Some(basis) = warm {
        if basis.fits(problem.num_vars(), problem.rows.len()) {
            if let Some(mut tab) = Tableau::with_basis(problem, opts, budget, basis) {
                match tab.warm_run() {
                    Ok(WarmOutcome::Solved(status)) => {
                        let solved = finish_tableau(tab, problem, status);
                        return Ok((solved.sol, solved.basis));
                    }
                    // Stale basis (including dual-detected infeasibility,
                    // which the cold phase-1 run below re-proves before it
                    // is trusted): fall through to the cold start.
                    Ok(WarmOutcome::Stale) => {}
                    Err(LpError::BudgetExceeded) => return Err(LpError::BudgetExceeded),
                    // Numerical breakdown mid-warm-start (singular basis,
                    // iteration limit): the cold start below is the retry.
                    Err(_) => {}
                }
            }
        }
    }
    let mut tableau = Tableau::new(problem, opts, budget);
    let status = tableau.run()?;
    let solved = finish_tableau(tableau, problem, status);
    Ok((solved.sol, solved.basis))
}

/// Optimizes a problem with no constraints: each variable independently
/// moves to the bound favoured by its objective coefficient.
fn solve_box_only(problem: &LpProblem) -> Solution {
    let mut x: Vec<f64> = problem
        .bounds
        .iter()
        .map(|&(lo, hi)| {
            if lo.is_finite() {
                lo
            } else if hi.is_finite() {
                hi
            } else {
                0.0
            }
        })
        .collect();
    let sign = match problem.direction {
        Direction::Minimize => 1.0,
        Direction::Maximize => -1.0,
    };
    for &(v, c) in problem.objective.terms() {
        let (lo, hi) = problem.bounds[v.0];
        let eff = sign * c;
        let target = if eff > 0.0 {
            lo
        } else if eff < 0.0 {
            hi
        } else {
            continue;
        };
        if !target.is_finite() {
            return Solution {
                status: SolveStatus::Unbounded,
                objective: 0.0,
                values: Vec::new(),
                duals: Vec::new(),
                farkas: Vec::new(),
            };
        }
        x[v.0] = target;
    }
    let obj = problem.objective.eval(&x);
    Solution {
        status: SolveStatus::Optimal,
        objective: obj,
        values: x,
        duals: Vec::new(),
        farkas: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LinExpr, LpProblem};

    fn expr(terms: &[(crate::VarId, f64)]) -> LinExpr {
        terms.iter().map(|&(v, c)| (v, c)).collect()
    }

    #[test]
    fn simple_maximization() {
        // Classic: max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 → 36.
        let mut p = LpProblem::new();
        let x = p.add_var(0.0, f64::INFINITY);
        let y = p.add_var(0.0, f64::INFINITY);
        p.add_constraint(expr(&[(x, 1.0)]), Sense::Le, 4.0);
        p.add_constraint(expr(&[(y, 2.0)]), Sense::Le, 12.0);
        p.add_constraint(expr(&[(x, 3.0), (y, 2.0)]), Sense::Le, 18.0);
        p.set_objective(Direction::Maximize, expr(&[(x, 3.0), (y, 5.0)]));
        let sol = p.solve().unwrap();
        assert!(sol.is_optimal());
        assert!((sol.objective - 36.0).abs() < 1e-6, "{}", sol.objective);
        assert!((sol.value(x) - 2.0).abs() < 1e-6);
        assert!((sol.value(y) - 6.0).abs() < 1e-6);
    }

    #[test]
    fn equality_constraints_work() {
        // min x + y s.t. x + y = 2, x - y = 0 → x = y = 1.
        let mut p = LpProblem::new();
        let x = p.add_var(f64::NEG_INFINITY, f64::INFINITY);
        let y = p.add_var(f64::NEG_INFINITY, f64::INFINITY);
        p.add_constraint(expr(&[(x, 1.0), (y, 1.0)]), Sense::Eq, 2.0);
        p.add_constraint(expr(&[(x, 1.0), (y, -1.0)]), Sense::Eq, 0.0);
        p.set_objective(Direction::Minimize, expr(&[(x, 1.0), (y, 1.0)]));
        let sol = p.solve().unwrap();
        assert!(sol.is_optimal());
        assert!((sol.value(x) - 1.0).abs() < 1e-7);
        assert!((sol.value(y) - 1.0).abs() < 1e-7);
    }

    #[test]
    fn detects_infeasible() {
        let mut p = LpProblem::new();
        let x = p.add_var(0.0, 1.0);
        p.add_constraint(expr(&[(x, 1.0)]), Sense::Ge, 2.0);
        let sol = p.solve().unwrap();
        assert_eq!(sol.status, SolveStatus::Infeasible);
    }

    #[test]
    fn detects_unbounded() {
        let mut p = LpProblem::new();
        let x = p.add_var(0.0, f64::INFINITY);
        let y = p.add_var(0.0, f64::INFINITY);
        p.add_constraint(expr(&[(x, 1.0), (y, -1.0)]), Sense::Le, 1.0);
        p.set_objective(Direction::Maximize, expr(&[(x, 1.0)]));
        let sol = p.solve().unwrap();
        assert_eq!(sol.status, SolveStatus::Unbounded);
    }

    #[test]
    fn honors_upper_bounds_via_bound_flips() {
        // max x + y s.t. x + y ≤ 1.5, 0 ≤ x,y ≤ 1 → 1.5.
        let mut p = LpProblem::new();
        let x = p.add_var(0.0, 1.0);
        let y = p.add_var(0.0, 1.0);
        p.add_constraint(expr(&[(x, 1.0), (y, 1.0)]), Sense::Le, 1.5);
        p.set_objective(Direction::Maximize, expr(&[(x, 1.0), (y, 1.0)]));
        let sol = p.solve().unwrap();
        assert!((sol.objective - 1.5).abs() < 1e-7);
    }

    #[test]
    fn free_variables_and_negative_bounds() {
        // min y s.t. y ≥ x - 1, y ≥ -x - 1, x free → y = -1 at x = 0.
        let mut p = LpProblem::new();
        let x = p.add_free_var();
        let y = p.add_free_var();
        p.add_constraint(expr(&[(y, 1.0), (x, -1.0)]), Sense::Ge, -1.0);
        p.add_constraint(expr(&[(y, 1.0), (x, 1.0)]), Sense::Ge, -1.0);
        p.set_objective(Direction::Minimize, expr(&[(y, 1.0)]));
        let sol = p.solve().unwrap();
        assert!(sol.is_optimal());
        assert!((sol.objective + 1.0).abs() < 1e-7, "{}", sol.objective);
    }

    #[test]
    fn degenerate_problem_terminates() {
        let mut p = LpProblem::new();
        let x = p.add_var(0.0, 10.0);
        let y = p.add_var(0.0, 10.0);
        for k in 1..20 {
            let kf = k as f64;
            p.add_constraint(expr(&[(x, kf), (y, 1.0)]), Sense::Le, kf);
        }
        p.set_objective(Direction::Maximize, expr(&[(x, 1.0), (y, 1.0)]));
        let sol = p.solve().unwrap();
        assert!(sol.is_optimal());
        assert!(p.is_feasible(&sol.values, 1e-6));
        assert!(sol.objective >= 1.0 - 1e-7);
    }

    #[test]
    fn ge_constraints_with_positive_rhs_need_phase1() {
        // min 2x + 3y s.t. x + y ≥ 4, x + 3y ≥ 6, x, y ≥ 0 → (3, 1): 9.
        let mut p = LpProblem::new();
        let x = p.add_var(0.0, f64::INFINITY);
        let y = p.add_var(0.0, f64::INFINITY);
        p.add_constraint(expr(&[(x, 1.0), (y, 1.0)]), Sense::Ge, 4.0);
        p.add_constraint(expr(&[(x, 1.0), (y, 3.0)]), Sense::Ge, 6.0);
        p.set_objective(Direction::Minimize, expr(&[(x, 2.0), (y, 3.0)]));
        let sol = p.solve().unwrap();
        assert!(sol.is_optimal());
        assert!((sol.objective - 9.0).abs() < 1e-6, "{}", sol.objective);
    }

    #[test]
    fn no_constraints_optimizes_over_box() {
        let mut p = LpProblem::new();
        let x = p.add_var(-2.0, 3.0);
        p.set_objective(Direction::Maximize, expr(&[(x, 2.0)]));
        let sol = p.solve().unwrap();
        assert_eq!(sol.objective, 6.0);
    }

    #[test]
    fn duals_match_the_textbook_example() {
        // max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18: the classic
        // Dantzig example with known shadow prices (0, 3/2, 1).
        let mut p = LpProblem::new();
        let x = p.add_var(0.0, f64::INFINITY);
        let y = p.add_var(0.0, f64::INFINITY);
        p.add_constraint(expr(&[(x, 1.0)]), Sense::Le, 4.0);
        p.add_constraint(expr(&[(y, 2.0)]), Sense::Le, 12.0);
        p.add_constraint(expr(&[(x, 3.0), (y, 2.0)]), Sense::Le, 18.0);
        p.set_objective(Direction::Maximize, expr(&[(x, 3.0), (y, 5.0)]));
        let opts = SimplexOptions {
            presolve_rounds: 0,
            ..SimplexOptions::default()
        };
        let sol = p.solve_with(&opts).unwrap();
        assert_eq!(sol.duals.len(), 3);
        assert!(sol.duals[0].abs() < 1e-7, "{:?}", sol.duals);
        assert!((sol.duals[1] - 1.5).abs() < 1e-7, "{:?}", sol.duals);
        assert!((sol.duals[2] - 1.0).abs() < 1e-7, "{:?}", sol.duals);
        // Strong duality: b·y equals the optimum for this standard-form LP.
        let by = 4.0 * sol.duals[0] + 12.0 * sol.duals[1] + 18.0 * sol.duals[2];
        assert!((by - sol.objective).abs() < 1e-6);
    }

    #[test]
    fn minimization_duals_have_user_orientation() {
        // min 2x s.t. x ≥ 3 → optimum 6; raising the rhs by 1 raises the
        // optimum by 2 → dual = +2.
        let mut p = LpProblem::new();
        let x = p.add_var(0.0, f64::INFINITY);
        p.add_constraint(expr(&[(x, 1.0)]), Sense::Ge, 3.0);
        p.set_objective(Direction::Minimize, expr(&[(x, 2.0)]));
        let opts = SimplexOptions {
            presolve_rounds: 0,
            ..SimplexOptions::default()
        };
        let sol = p.solve_with(&opts).unwrap();
        assert!((sol.objective - 6.0).abs() < 1e-7);
        assert_eq!(sol.duals.len(), 1);
        assert!((sol.duals[0] - 2.0).abs() < 1e-7, "{:?}", sol.duals);
    }

    #[test]
    fn duals_survive_presolve_row_dropping() {
        // Same Dantzig example, but with presolve ON: rows 1 and 2 are
        // singletons presolve folds into bounds, so the solver used to
        // return `duals: []`. The postsolve map must reconstruct all three
        // shadow prices at their original indices.
        let mut p = LpProblem::new();
        let x = p.add_var(0.0, f64::INFINITY);
        let y = p.add_var(0.0, f64::INFINITY);
        p.add_constraint(expr(&[(x, 1.0)]), Sense::Le, 4.0);
        p.add_constraint(expr(&[(y, 2.0)]), Sense::Le, 12.0);
        p.add_constraint(expr(&[(x, 3.0), (y, 2.0)]), Sense::Le, 18.0);
        p.set_objective(Direction::Maximize, expr(&[(x, 3.0), (y, 5.0)]));
        let sol = p.solve().unwrap();
        assert!(sol.is_optimal());
        assert_eq!(sol.duals.len(), 3, "duals must align with original rows");
        assert!(sol.duals[0].abs() < 1e-6, "{:?}", sol.duals);
        assert!((sol.duals[1] - 1.5).abs() < 1e-6, "{:?}", sol.duals);
        assert!((sol.duals[2] - 1.0).abs() < 1e-6, "{:?}", sol.duals);
        let by = 4.0 * sol.duals[0] + 12.0 * sol.duals[1] + 18.0 * sol.duals[2];
        assert!((by - sol.objective).abs() < 1e-6);
    }

    #[test]
    fn duals_cover_fully_presolved_problems() {
        // min 2x s.t. x ≥ 3: presolve turns the single row into a bound
        // and the solve degenerates to the box-only path; the dual (+2)
        // must still be reported against the original row.
        let mut p = LpProblem::new();
        let x = p.add_var(0.0, f64::INFINITY);
        p.add_constraint(expr(&[(x, 1.0)]), Sense::Ge, 3.0);
        p.set_objective(Direction::Minimize, expr(&[(x, 2.0)]));
        let sol = p.solve().unwrap();
        assert!(sol.is_optimal());
        assert!((sol.objective - 6.0).abs() < 1e-7);
        assert_eq!(sol.duals.len(), 1);
        assert!((sol.duals[0] - 2.0).abs() < 1e-6, "{:?}", sol.duals);
    }

    #[test]
    fn removed_redundant_rows_report_zero_duals() {
        // x + y ≤ 50 is implied by the bounds: presolve drops it, and a
        // slack row has shadow price 0 at its original index.
        let mut p = LpProblem::new();
        let x = p.add_var(0.0, 1.0);
        let y = p.add_var(0.0, 1.0);
        p.add_constraint(expr(&[(x, 1.0), (y, 1.0)]), Sense::Le, 50.0);
        p.add_constraint(expr(&[(x, 1.0), (y, 1.0)]), Sense::Le, 1.5);
        p.set_objective(Direction::Maximize, expr(&[(x, 1.0), (y, 1.0)]));
        let sol = p.solve().unwrap();
        assert!(sol.is_optimal());
        assert_eq!(sol.duals.len(), 2);
        assert!(sol.duals[0].abs() < 1e-6, "{:?}", sol.duals);
        assert!((sol.duals[1] - 1.0).abs() < 1e-6, "{:?}", sol.duals);
    }

    #[test]
    fn presolve_tolerance_matches_simplex_tolerance() {
        // The violation here (5e-8) sits between the old hard-coded
        // presolve tolerance (1e-9) and the simplex feasibility tolerance
        // (1e-7): presolve used to declare this infeasible even though the
        // simplex would happily accept the point x = 1.
        let mut p = LpProblem::new();
        let x = p.add_var(0.0, 1.0);
        p.add_constraint(expr(&[(x, 1.0)]), Sense::Ge, 1.0 + 5e-8);
        p.set_objective(Direction::Minimize, expr(&[(x, 1.0)]));
        let sol = p.solve().unwrap();
        assert!(
            sol.is_optimal(),
            "within-tolerance LP declared {:?}",
            sol.status
        );
    }

    #[test]
    fn warm_start_reaches_the_same_optimum_after_bound_changes() {
        // Solve, tighten a bound (the branch-and-bound move), re-solve
        // from the extracted basis: the dual simplex must land on the same
        // optimum a cold solve finds.
        let mut p = LpProblem::new();
        let x = p.add_var(0.0, 4.0);
        let y = p.add_var(0.0, 6.0);
        p.add_constraint(expr(&[(x, 3.0), (y, 2.0)]), Sense::Le, 18.0);
        p.add_constraint(expr(&[(x, 1.0), (y, 1.0)]), Sense::Le, 8.0);
        p.set_objective(Direction::Maximize, expr(&[(x, 3.0), (y, 5.0)]));
        let opts = SimplexOptions {
            presolve_rounds: 0,
            ..SimplexOptions::default()
        };
        let budget = Budget::unlimited();
        let (first, basis) = solve_reuse(&p, &opts, &budget, None).unwrap();
        assert!(first.is_optimal());
        let basis = basis.expect("optimal solve yields a basis");
        p.bounds[1] = (0.0, 3.0); // tighten y ≤ 3 as a branch would
        let (cold, _) = solve_reuse(&p, &opts, &budget, None).unwrap();
        let (warm, warm_basis) = solve_reuse(&p, &opts, &budget, Some(&basis)).unwrap();
        assert!(cold.is_optimal() && warm.is_optimal());
        assert!(
            (warm.objective - cold.objective).abs() < 1e-7,
            "warm {} vs cold {}",
            warm.objective,
            cold.objective
        );
        assert!(p.is_feasible(&warm.values, 1e-6));
        assert!(warm_basis.is_some());
    }

    #[test]
    fn warm_start_extends_across_appended_rows_and_vars() {
        // Per-label reuse shape: solve a base LP, append a variable and a
        // row, and seed the bigger problem from the smaller basis. The old
        // optimum satisfies the new row, so primal phase 2 alone finishes.
        let mut p = LpProblem::new();
        let x = p.add_var(0.0, 4.0);
        let y = p.add_var(0.0, 6.0);
        p.add_constraint(expr(&[(x, 3.0), (y, 2.0)]), Sense::Le, 18.0);
        p.set_objective(Direction::Maximize, expr(&[(x, 3.0), (y, 5.0)]));
        let opts = SimplexOptions {
            presolve_rounds: 0,
            ..SimplexOptions::default()
        };
        let budget = Budget::unlimited();
        let (_, basis) = solve_reuse(&p, &opts, &budget, None).unwrap();
        let basis = basis.expect("basis");
        let z = p.add_var(0.0, 1.0);
        p.add_constraint(expr(&[(x, 1.0), (z, 5.0)]), Sense::Le, 30.0);
        let (cold, _) = solve_reuse(&p, &opts, &budget, None).unwrap();
        let (warm, _) = solve_reuse(&p, &opts, &budget, Some(&basis)).unwrap();
        assert!(cold.is_optimal() && warm.is_optimal());
        assert!((warm.objective - cold.objective).abs() < 1e-7);
    }

    #[test]
    fn stale_basis_falls_back_to_cold_start() {
        // A basis from a completely unrelated problem must not corrupt the
        // result: the warm attempt is rejected or repaired, never trusted.
        let mut small = LpProblem::new();
        let a = small.add_var(0.0, 1.0);
        small.add_constraint(expr(&[(a, 1.0)]), Sense::Le, 0.5);
        small.set_objective(Direction::Maximize, expr(&[(a, 1.0)]));
        let opts = SimplexOptions {
            presolve_rounds: 0,
            ..SimplexOptions::default()
        };
        let budget = Budget::unlimited();
        let (_, basis) = solve_reuse(&small, &opts, &budget, None).unwrap();
        let basis = basis.expect("basis");
        let mut big = LpProblem::new();
        let x = big.add_var(0.0, 4.0);
        let y = big.add_var(0.0, 6.0);
        big.add_constraint(expr(&[(x, 1.0)]), Sense::Ge, 1.0);
        big.add_constraint(expr(&[(x, 3.0), (y, 2.0)]), Sense::Le, 18.0);
        big.set_objective(Direction::Maximize, expr(&[(x, 3.0), (y, 5.0)]));
        let (cold, _) = solve_reuse(&big, &opts, &budget, None).unwrap();
        let (warm, _) = solve_reuse(&big, &opts, &budget, Some(&basis)).unwrap();
        assert!(cold.is_optimal() && warm.is_optimal());
        assert!((warm.objective - cold.objective).abs() < 1e-7);
    }

    #[test]
    fn budget_expiry_mid_dual_pivot_errors_budget_exceeded() {
        // An already-expired budget must abort the dual simplex on its
        // first pivot with the same error contract as the primal phases.
        let mut p = LpProblem::new();
        let x = p.add_var(0.0, 4.0);
        let y = p.add_var(0.0, 6.0);
        p.add_constraint(expr(&[(x, 3.0), (y, 2.0)]), Sense::Le, 18.0);
        p.set_objective(Direction::Maximize, expr(&[(x, 3.0), (y, 5.0)]));
        let opts = SimplexOptions {
            presolve_rounds: 0,
            ..SimplexOptions::default()
        };
        let (first, basis) = solve_reuse(&p, &opts, &Budget::unlimited(), None).unwrap();
        assert!(first.is_optimal());
        let basis = basis.expect("basis");
        p.bounds[1] = (0.0, 2.0);
        let expired = Budget::default()
            .with_deadline(std::time::Instant::now() - std::time::Duration::from_millis(1));
        let err = solve_reuse(&p, &opts, &expired, Some(&basis)).unwrap_err();
        assert_eq!(err, LpError::BudgetExceeded);
    }

    #[test]
    fn warm_start_detects_infeasible_children() {
        // Fixing a variable outside the constraint's reach makes the child
        // infeasible; the dual simplex signals it and the cold fallback
        // must confirm Infeasible rather than mislabel it.
        let mut p = LpProblem::new();
        let x = p.add_var(0.0, 1.0);
        let y = p.add_var(0.0, 1.0);
        p.add_constraint(expr(&[(x, 1.0), (y, 1.0)]), Sense::Le, 1.0);
        p.set_objective(Direction::Maximize, expr(&[(x, 1.0), (y, 1.0)]));
        let opts = SimplexOptions {
            presolve_rounds: 0,
            ..SimplexOptions::default()
        };
        let budget = Budget::unlimited();
        let (first, basis) = solve_reuse(&p, &opts, &budget, None).unwrap();
        assert!(first.is_optimal());
        let basis = basis.expect("basis");
        p.bounds[0] = (1.0, 1.0);
        p.bounds[1] = (1.0, 1.0); // x + y = 2 > 1: infeasible
        let (warm, _) = solve_reuse(&p, &opts, &budget, Some(&basis)).unwrap();
        assert_eq!(warm.status, SolveStatus::Infeasible);
    }

    #[test]
    fn equality_chain_with_free_vars() {
        // A chain of equalities like the verifier's linking rows:
        // d_i = a_i − b_i, with a, b boxed and an objective on d.
        let mut p = LpProblem::new();
        let mut prev = None;
        let mut d_vars = Vec::new();
        for i in 0..10 {
            let a = p.add_var(-1.0, 1.0);
            let b = p.add_var(-1.0, 1.0);
            let d = p.add_free_var();
            p.add_constraint(expr(&[(d, 1.0), (a, -1.0), (b, 1.0)]), Sense::Eq, 0.0);
            if let Some(pd) = prev {
                // Couple adjacent differences: d_i − 0.5 d_{i−1} ≤ 0.2.
                p.add_constraint(expr(&[(d, 1.0), (pd, -0.5)]), Sense::Le, 0.2);
            }
            prev = Some(d);
            d_vars.push((d, 1.0 / (1.0 + i as f64)));
        }
        p.set_objective(Direction::Maximize, expr(&d_vars));
        let sol = p.solve().unwrap();
        assert!(sol.is_optimal());
        assert!(p.is_feasible(&sol.values, 1e-6));
    }
}
