//! Certificate emission: packaging a solve's duals, Farkas multipliers, and
//! branch-and-bound leaf proofs into a [`raven_check::LpCertificate`] that
//! the exact checker can replay independently.
//!
//! Emission never affects solving. The certified entry points on
//! [`LpProblem`](crate::LpProblem) run a dedicated solve with presolve
//! disabled — presolve rewrites the row set, which would misalign the duals
//! with the rows the certificate records — and collect per-leaf proofs as
//! the tree is explored. A solve that cannot be certified (an unbounded
//! relaxation, an infeasibility detected without usable multipliers) simply
//! yields `None`; it never degrades the solution itself.

use crate::model::{Direction, LpProblem, Sense, Solution, SolveStatus};
use raven_check::{
    BranchLeaf, CertDirection, CertProblem, CertRow, CertSense, LeafProof, LpCertificate, LpProof,
};

/// Snapshot of an [`LpProblem`] in the checker's vocabulary.
pub(crate) fn problem_cert(problem: &LpProblem) -> CertProblem {
    CertProblem {
        direction: match problem.direction {
            Direction::Minimize => CertDirection::Minimize,
            Direction::Maximize => CertDirection::Maximize,
        },
        lower: problem.bounds.iter().map(|&(lo, _)| lo).collect(),
        upper: problem.bounds.iter().map(|&(_, hi)| hi).collect(),
        integer: problem
            .integer
            .iter()
            .enumerate()
            .filter_map(|(i, &b)| b.then_some(i))
            .collect(),
        rows: problem
            .rows
            .iter()
            .map(|row| CertRow {
                sense: match row.sense {
                    Sense::Le => CertSense::Le,
                    Sense::Ge => CertSense::Ge,
                    Sense::Eq => CertSense::Eq,
                },
                rhs: row.rhs,
                coeffs: row.expr.terms().iter().map(|&(v, c)| (v.0, c)).collect(),
            })
            .collect(),
        objective: problem
            .objective
            .terms()
            .iter()
            .map(|&(v, c)| (v.0, c))
            .collect(),
    }
}

/// Zeroes out duals whose sign is invalid for their row's sense and the
/// objective direction. Float noise can leave a solver dual a few ulps on
/// the wrong side of zero, which the exact checker hard-rejects; dropping
/// such a multiplier only *loosens* the dual bound (weak duality holds
/// for any valid-signed subset), so this is always sound.
fn oriented_duals(problem: &LpProblem, duals: &[f64]) -> Vec<f64> {
    let maximize = problem.direction == Direction::Maximize;
    problem
        .rows
        .iter()
        .zip(duals)
        .map(|(row, &y)| {
            let valid = match (maximize, row.sense) {
                (_, Sense::Eq) => true,
                (true, Sense::Le) | (false, Sense::Ge) => y >= 0.0,
                (true, Sense::Ge) | (false, Sense::Le) => y <= 0.0,
            };
            if valid {
                y
            } else {
                0.0
            }
        })
        .collect()
}

/// Same sanitization for Farkas rays, which use the internal convention
/// (`≤` rows need `y ≤ 0`, `≥` rows `y ≥ 0`). A noise entry contributes
/// nothing to the refutation, so zeroing it keeps the proof intact.
fn oriented_ray(problem: &LpProblem, ray: &[f64]) -> Vec<f64> {
    problem
        .rows
        .iter()
        .zip(ray)
        .map(|(row, &y)| {
            let valid = match row.sense {
                Sense::Eq => true,
                Sense::Le => y <= 0.0,
                Sense::Ge => y >= 0.0,
            };
            if valid {
                y
            } else {
                0.0
            }
        })
        .collect()
}

/// The infinite bound a proved-infeasible problem claims: nothing is
/// feasible, so the optimum is −∞ for Maximize and +∞ for Minimize.
fn infeasible_claim(direction: Direction) -> f64 {
    match direction {
        Direction::Maximize => f64::NEG_INFINITY,
        Direction::Minimize => f64::INFINITY,
    }
}

/// Certificate for a pure-LP solve (no branching): the optimal duals prove
/// the objective bound, or the Farkas multipliers prove infeasibility.
/// `None` when the outcome carries no replayable evidence.
pub(crate) fn bound_certificate(problem: &LpProblem, sol: &Solution) -> Option<LpCertificate> {
    match sol.status {
        SolveStatus::Optimal if sol.duals.len() == problem.rows.len() => Some(LpCertificate {
            problem: problem_cert(problem),
            claimed_bound: sol.objective,
            proof: LpProof::Bound {
                duals: oriented_duals(problem, &sol.duals),
            },
        }),
        SolveStatus::Infeasible if sol.farkas.len() == problem.rows.len() => Some(LpCertificate {
            problem: problem_cert(problem),
            claimed_bound: infeasible_claim(problem.direction),
            proof: LpProof::Farkas {
                ray: oriented_ray(problem, &sol.farkas),
            },
        }),
        _ => None,
    }
}

/// Per-leaf proofs gathered during a certified branch-and-bound run.
///
/// Every node the search pops and disposes of contributes one leaf (or
/// flips `certifiable` off when it cannot): infeasible relaxations
/// contribute their Farkas ray, explored/pruned relaxations their duals,
/// and nodes left open at a budget exit their parent's duals. Empty-box
/// prunes contribute nothing — the checker proves those subtrees
/// integer-empty on its own.
#[derive(Debug, Default)]
pub(crate) struct BranchCollector {
    pub(crate) leaves: Vec<BranchLeaf>,
    pub(crate) uncertifiable: bool,
}

impl BranchCollector {
    pub(crate) fn leaf(&mut self, fixes: &[(usize, f64, f64)], proof: LeafProof) {
        self.leaves.push(BranchLeaf {
            fixes: fixes.to_vec(),
            proof,
        });
    }
}

/// Certificate for a certified branch-and-bound run. `None` when any part
/// of the tree lacked evidence.
pub(crate) fn branch_certificate(
    problem: &LpProblem,
    sol: &Solution,
    collector: BranchCollector,
) -> Option<LpCertificate> {
    if collector.uncertifiable {
        return None;
    }
    let claimed_bound = match sol.status {
        SolveStatus::Optimal => sol.objective,
        SolveStatus::BudgetExceeded { best_bound } => best_bound,
        SolveStatus::Infeasible => infeasible_claim(problem.direction),
        SolveStatus::Unbounded => return None,
    };
    let leaves = collector
        .leaves
        .into_iter()
        .map(|leaf| BranchLeaf {
            fixes: leaf.fixes,
            proof: match leaf.proof {
                LeafProof::Bound { duals } => LeafProof::Bound {
                    duals: oriented_duals(problem, &duals),
                },
                LeafProof::Farkas { ray } => LeafProof::Farkas {
                    ray: oriented_ray(problem, &ray),
                },
            },
        })
        .collect();
    Some(LpCertificate {
        problem: problem_cert(problem),
        claimed_bound,
        proof: LpProof::Branch { leaves },
    })
}

#[cfg(test)]
mod tests {
    use crate::{
        Budget, Direction, LinExpr, LpProblem, MilpOptions, Sense, SimplexOptions, SolveStatus,
    };
    use raven_check::{check_certificate, Certificate, LpCertificate};

    fn wrap(lp: LpCertificate) -> Certificate {
        Certificate {
            kind: "test".to_string(),
            tier: "lp".to_string(),
            degraded: false,
            lp: Some(lp),
            analysis: None,
        }
    }

    #[test]
    fn lp_certificate_replays_exactly() {
        // max x + y s.t. x + 2y ≤ 4, 3x + y ≤ 6, boxes [0,10] → 2.8.
        let mut p = LpProblem::new();
        let x = p.add_var(0.0, 10.0);
        let y = p.add_var(0.0, 10.0);
        p.add_constraint(LinExpr::new().term(1.0, x).term(2.0, y), Sense::Le, 4.0);
        p.add_constraint(LinExpr::new().term(3.0, x).term(1.0, y), Sense::Le, 6.0);
        p.set_objective(
            Direction::Maximize,
            LinExpr::new().term(1.0, x).term(1.0, y),
        );
        let (sol, cert) = p
            .solve_certified(&SimplexOptions::default(), &Budget::unlimited())
            .unwrap();
        assert!(sol.is_optimal());
        let cert = cert.expect("optimal LP must certify");
        let report = check_certificate(&wrap(cert)).expect("replay must accept");
        assert!(report.lp_checked);
        assert!((report.exact_bound.unwrap() - 2.8).abs() < 1e-6);
    }

    #[test]
    fn wrong_signed_dual_noise_is_zeroed_not_rejected() {
        // min x s.t. x ≥ 1, x ≥ 0.5, x ∈ [0,10] → 1. Hand a Solution whose
        // second dual carries a few-ulp wrong-signed noise entry (as the
        // float simplex produces on slack rows); emission must zero it so
        // the exact checker accepts instead of hard-rejecting the sign.
        let mut p = LpProblem::new();
        let x = p.add_var(0.0, 10.0);
        p.add_constraint(LinExpr::new().term(1.0, x), Sense::Ge, 1.0);
        p.add_constraint(LinExpr::new().term(1.0, x), Sense::Ge, 0.5);
        p.set_objective(Direction::Minimize, LinExpr::new().term(1.0, x));
        let sol = crate::Solution {
            status: SolveStatus::Optimal,
            objective: 1.0,
            values: vec![1.0],
            duals: vec![1.0, -3.0e-16],
            farkas: Vec::new(),
        };
        let cert = super::bound_certificate(&p, &sol).expect("optimal solution must certify");
        let report = check_certificate(&wrap(cert)).expect("noise dual must be sanitized away");
        assert!(report.lp_checked);
        assert!((report.exact_bound.unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn infeasible_lp_emits_replayable_farkas_ray() {
        // x + y ≥ 5 with x,y ∈ [0,1] is infeasible.
        let mut p = LpProblem::new();
        let x = p.add_var(0.0, 1.0);
        let y = p.add_var(0.0, 1.0);
        p.add_constraint(LinExpr::new().term(1.0, x).term(1.0, y), Sense::Ge, 5.0);
        p.set_objective(Direction::Maximize, LinExpr::new().term(1.0, x));
        let (sol, cert) = p
            .solve_certified(&SimplexOptions::default(), &Budget::unlimited())
            .unwrap();
        assert_eq!(sol.status, SolveStatus::Infeasible);
        assert!(!sol.farkas.is_empty(), "simplex must surface the ray");
        let cert = cert.expect("infeasible LP must certify");
        let report = check_certificate(&wrap(cert)).expect("farkas replay must accept");
        assert!(report.exact_bound.is_none());
    }

    fn knapsack() -> LpProblem {
        let mut p = LpProblem::new();
        let vars: Vec<_> = (0..6).map(|_| p.add_binary_var()).collect();
        let weights = [2.0, 3.0, 1.0, 4.0, 2.0, 3.0];
        let profits = [5.0, 4.0, 3.0, 7.0, 4.0, 5.0];
        let mut cap = LinExpr::new();
        let mut obj = LinExpr::new();
        for (i, &v) in vars.iter().enumerate() {
            cap.push(weights[i], v);
            obj.push(profits[i], v);
        }
        p.add_constraint(cap, Sense::Le, 7.0);
        p.set_objective(Direction::Maximize, obj);
        p
    }

    #[test]
    fn milp_branch_certificate_replays() {
        let p = knapsack();
        let (sol, cert) = p
            .solve_milp_certified(&MilpOptions::default(), &Budget::unlimited())
            .unwrap();
        assert!(sol.is_optimal());
        let cert = cert.expect("complete B&B must certify");
        let report = check_certificate(&wrap(cert)).expect("branch replay must accept");
        assert!(report.leaves > 1, "knapsack must branch");
        assert!((report.claimed_bound.unwrap() - sol.objective).abs() < 1e-9);
    }

    #[test]
    fn milp_budget_exit_certifies_anytime_bound() {
        let p = knapsack();
        let exact = p.solve_milp().unwrap().objective;
        let opts = MilpOptions {
            max_nodes: 3,
            ..MilpOptions::default()
        };
        let (sol, cert) = p.solve_milp_certified(&opts, &Budget::unlimited()).unwrap();
        let SolveStatus::BudgetExceeded { best_bound } = sol.status else {
            panic!("expected BudgetExceeded, got {:?}", sol.status);
        };
        assert!(best_bound >= exact - 1e-9);
        // Root explored (3 nodes > 1), so open nodes carry parent duals.
        let cert = cert.expect("anytime exit past the root must certify");
        let report = check_certificate(&wrap(cert)).expect("anytime replay must accept");
        assert!((report.claimed_bound.unwrap() - best_bound).abs() < 1e-9);
    }

    #[test]
    fn infeasible_milp_certifies_with_farkas_leaves() {
        // x + y ≥ 3 over binaries is infeasible; Maximize makes the
        // infeasibility claim −inf, which only all-Farkas leaves support.
        let mut p = LpProblem::new();
        let x = p.add_binary_var();
        let y = p.add_binary_var();
        p.add_constraint(LinExpr::new().term(1.0, x).term(1.0, y), Sense::Ge, 3.0);
        p.set_objective(Direction::Maximize, LinExpr::new().term(1.0, x));
        let (sol, cert) = p
            .solve_milp_certified(&MilpOptions::default(), &Budget::unlimited())
            .unwrap();
        assert_eq!(sol.status, SolveStatus::Infeasible);
        let cert = cert.expect("infeasible MILP must certify");
        let report = check_certificate(&wrap(cert)).expect("replay must accept");
        assert!(report.exact_bound.is_none());
    }

    #[test]
    fn tampered_branch_certificate_is_rejected() {
        let p = knapsack();
        let (_, cert) = p
            .solve_milp_certified(&MilpOptions::default(), &Budget::unlimited())
            .unwrap();
        let mut cert = cert.unwrap();
        // Claiming a tighter bound than the tree proves must be rejected.
        cert.claimed_bound -= 1.0;
        assert!(check_certificate(&wrap(cert)).is_err());
    }
}
