//! Branch & bound for mixed-integer linear programs.
//!
//! The RaVeN encodings only use integrality on a handful of *specification*
//! variables (one indicator per execution for UAP accuracy counting, one per
//! output bit for hamming distance), never on per-neuron variables. The
//! search tree therefore stays tiny (≤ 2^k nodes), matching the paper's
//! scalable MILP configuration.

use crate::certificate::BranchCollector;
use crate::simplex::{Basis, BasisCache};
use crate::{Budget, LpError, LpProblem, SimplexOptions, Solution, SolveStatus};
use raven_check::LeafProof;
use std::rc::Rc;

/// Options for [`LpProblem::solve_milp_with`].
#[derive(Debug, Clone, PartialEq)]
pub struct MilpOptions {
    /// LP options used at every node.
    pub simplex: SimplexOptions,
    /// Hard limit on explored nodes.
    pub max_nodes: usize,
    /// Integrality tolerance.
    pub int_tol: f64,
    /// Warm-start each node's relaxation from its parent's optimal basis
    /// with the dual simplex (bound changes keep the parent basis
    /// dual-feasible). Purely an accelerator: stale bases fall back to a
    /// cold start, so results are identical either way.
    pub warm_start: bool,
}

impl Default for MilpOptions {
    fn default() -> Self {
        Self {
            simplex: SimplexOptions::default(),
            max_nodes: 10_000,
            int_tol: 1e-6,
            warm_start: true,
        }
    }
}

struct Node {
    /// `(var index, lo, hi)` overrides accumulated along the branch.
    fixes: Vec<(usize, f64, f64)>,
    /// Parent relaxation objective: a sound bound on every leaf below this
    /// node (infinite in the optimistic direction at the root, where no
    /// relaxation has been solved yet).
    bound: f64,
    /// Closest ancestor's optimal basis, shared across siblings; the dual
    /// simplex starts from it when warm starts are on.
    warm: Option<Rc<Basis>>,
    /// Parent relaxation's row duals, kept only in certified runs: a node
    /// still open when the budget dies becomes a certificate leaf whose
    /// bound is proved by its parent's duals (dual feasibility does not
    /// depend on the variable box, so the parent's multipliers bound every
    /// sub-box too). `None` at the root — a root left open is uncertifiable.
    duals: Option<Rc<Vec<f64>>>,
}

/// The anytime result when budget or node limit stops the search: the
/// sound dual bound is the optimistic-direction extreme over the incumbent
/// and every open node's parent relaxation bound.
fn anytime_solution(minimize: bool, stack: &[Node], incumbent: &Option<Solution>) -> Solution {
    crate::metrics::MILP_BUDGET_EXHAUSTED.inc();
    // Mark the exhaustion in the owning request's trace (when one is
    // installed on this thread): a degraded verdict's trace then shows
    // exactly where the anytime ladder gave up and how much B&B work was
    // still open. Observe-only; gated to skip the allocations otherwise.
    if raven_obs::enabled() {
        raven_obs::event(
            "milp_budget_exhausted",
            &[
                ("open_nodes", stack.len().to_string()),
                ("incumbent", incumbent.is_some().to_string()),
            ],
        );
    }
    let mut bound = incumbent.as_ref().map_or(
        if minimize {
            f64::INFINITY
        } else {
            f64::NEG_INFINITY
        },
        |s| s.objective,
    );
    for node in stack {
        bound = if minimize {
            bound.min(node.bound)
        } else {
            bound.max(node.bound)
        };
    }
    Solution {
        status: SolveStatus::BudgetExceeded { best_bound: bound },
        objective: bound,
        values: incumbent
            .as_ref()
            .map(|s| s.values.clone())
            .unwrap_or_default(),
        duals: Vec::new(),
        farkas: Vec::new(),
    }
}

/// Converts every still-open node into a certificate leaf proved by its
/// parent's duals (see [`Node::duals`]); an open root has no parent proof
/// and makes the run uncertifiable.
fn drain_open_nodes(collector: &mut BranchCollector, stack: &[Node]) {
    for node in stack {
        match &node.duals {
            Some(d) => collector.leaf(
                &node.fixes,
                LeafProof::Bound {
                    duals: (**d).clone(),
                },
            ),
            None => collector.uncertifiable = true,
        }
    }
}

/// Solves `problem` by LP-based branch & bound over its integer variables.
pub(crate) fn solve(
    problem: &LpProblem,
    opts: &MilpOptions,
    budget: &Budget<'_>,
) -> Result<Solution, LpError> {
    solve_with_cache(problem, opts, budget, &mut BasisCache::new())
}

/// [`solve`] plus a caller-held [`BasisCache`]: the root relaxation seeds
/// from the cache and the final root basis is stored back, so a sequence
/// of related MILPs (for example the per-label encodings that share one
/// relaxation) warm-start each other.
pub(crate) fn solve_with_cache(
    problem: &LpProblem,
    opts: &MilpOptions,
    budget: &Budget<'_>,
    cache: &mut BasisCache,
) -> Result<Solution, LpError> {
    solve_collecting(problem, opts, budget, cache, None)
}

/// [`solve_with_cache`] plus an optional certificate collector. A `Some`
/// collector switches the run to *certified mode*: presolve is disabled
/// everywhere (it rewrites the row set and would misalign duals with the
/// rows the certificate records) and every disposed node contributes a leaf
/// proof. Certified mode costs time, never correctness — the solution is
/// computed the same way either side of the flag, modulo presolve.
pub(crate) fn solve_collecting(
    problem: &LpProblem,
    opts: &MilpOptions,
    budget: &Budget<'_>,
    cache: &mut BasisCache,
    mut collector: Option<&mut BranchCollector>,
) -> Result<Solution, LpError> {
    let mut certified_opts;
    let opts = if collector.is_some() {
        certified_opts = opts.clone();
        certified_opts.simplex.presolve_rounds = 0;
        &certified_opts
    } else {
        opts
    };
    let int_vars: Vec<usize> = problem
        .integer
        .iter()
        .enumerate()
        .filter_map(|(i, &b)| b.then_some(i))
        .collect();
    if int_vars.is_empty() {
        let sol = problem.solve_with_budget(&opts.simplex, budget)?;
        if let Some(c) = collector {
            // No branching happened: the whole "tree" is one root leaf.
            match sol.status {
                SolveStatus::Optimal if sol.duals.len() == problem.rows.len() => c.leaf(
                    &[],
                    LeafProof::Bound {
                        duals: sol.duals.clone(),
                    },
                ),
                SolveStatus::Infeasible if sol.farkas.len() == problem.rows.len() => c.leaf(
                    &[],
                    LeafProof::Farkas {
                        ray: sol.farkas.clone(),
                    },
                ),
                _ => c.uncertifiable = true,
            }
        }
        return Ok(sol);
    }
    let minimize = matches!(problem.direction, crate::Direction::Minimize);
    let root_bound = if minimize {
        f64::NEG_INFINITY
    } else {
        f64::INFINITY
    };
    // One shared node state for the whole tree: each node intersects its
    // branch's bound fixes in, solves, and undoes them — replacing the
    // per-node full-problem clone the loop used to pay.
    let mut work = problem.clone();
    if opts.warm_start && opts.simplex.presolve_rounds > 0 && !work.rows.is_empty() {
        // Warm starts need every node to share one row/variable layout, so
        // presolve once against the root bounds instead of per node inside
        // `solve()`. Root reductions stay valid down the tree: branching
        // only shrinks the feasible set, so implied rows stay implied and
        // tightened bounds stay correct.
        let report =
            crate::presolve::presolve(&mut work, opts.simplex.presolve_rounds, opts.simplex.tol);
        crate::metrics::PRESOLVE_ROWS_REMOVED.add(report.removed_rows as u64);
        crate::metrics::PRESOLVE_BOUNDS_TIGHTENED.add(report.tightened_bounds as u64);
        if report.infeasible {
            return Ok(Solution {
                status: SolveStatus::Infeasible,
                objective: 0.0,
                values: Vec::new(),
                duals: Vec::new(),
                farkas: Vec::new(),
            });
        }
    }
    // Best-known integral solution.
    let mut incumbent: Option<Solution> = None;
    let mut stack = vec![Node {
        fixes: Vec::new(),
        bound: root_bound,
        warm: cache.basis.clone().map(Rc::new),
        duals: None,
    }];
    let mut nodes = 0usize;
    while let Some(node) = stack.pop() {
        // Anytime exit: when the budget expires or the node limit is hit
        // with work remaining, report the best sound incumbent/dual bound
        // instead of discarding everything already explored.
        if nodes >= opts.max_nodes || budget.exhausted() {
            stack.push(node);
            if let Some(c) = collector.as_deref_mut() {
                drain_open_nodes(c, &stack);
            }
            return Ok(anytime_solution(minimize, &stack, &incumbent));
        }
        nodes += 1;
        crate::metrics::MILP_NODES.inc();
        // Intersect this branch's fixes into the shared bounds, remembering
        // the previous values for the undo below.
        let mut undo: Vec<(usize, (f64, f64))> = Vec::with_capacity(node.fixes.len());
        let mut empty = false;
        for &(v, lo, hi) in &node.fixes {
            let (cur_lo, cur_hi) = work.bounds[v];
            undo.push((v, (cur_lo, cur_hi)));
            let new_lo = cur_lo.max(lo);
            let new_hi = cur_hi.min(hi);
            if new_lo > new_hi {
                empty = true;
                break;
            }
            work.bounds[v] = (new_lo, new_hi);
        }
        if empty {
            for &(v, b) in undo.iter().rev() {
                work.bounds[v] = b;
            }
            crate::metrics::MILP_NODES_PRUNED.inc();
            continue;
        }
        // Propagate solver failures: silently pruning a node whose
        // relaxation did not solve would under-estimate a maximization
        // objective and make verification results unsound.
        let solved = if opts.warm_start {
            crate::simplex::solve_reuse(&work, &opts.simplex, budget, node.warm.as_deref())
        } else {
            work.solve_with_budget(&opts.simplex, budget)
                .map(|s| (s, None))
        };
        for &(v, b) in undo.iter().rev() {
            work.bounds[v] = b;
        }
        let (mut relax, relax_basis) = match solved {
            Ok(r) => r,
            Err(LpError::BudgetExceeded) => {
                // The budget died inside this node's relaxation: the node
                // is unexplored, so fold it back under its parent bound.
                stack.push(node);
                if let Some(c) = collector.as_deref_mut() {
                    drain_open_nodes(c, &stack);
                }
                return Ok(anytime_solution(minimize, &stack, &incumbent));
            }
            Err(e) => return Err(e),
        };
        match relax.status {
            SolveStatus::Infeasible => {
                if let Some(c) = collector.as_deref_mut() {
                    if relax.farkas.len() == work.rows.len() && !relax.farkas.is_empty() {
                        c.leaf(
                            &node.fixes,
                            LeafProof::Farkas {
                                ray: relax.farkas.clone(),
                            },
                        );
                    } else {
                        c.uncertifiable = true;
                    }
                }
                crate::metrics::MILP_NODES_PRUNED.inc();
                continue;
            }
            SolveStatus::Unbounded => {
                // Sound propagation from *any* node, not just the root: an
                // unbounded ray of a child relaxation is a ray of every
                // ancestor (bound fixes only shrink the recession cone's
                // domain sideways, never add directions), so the MILP's
                // objective is unbounded or its constraints infeasible —
                // either way, pruning the node as "infeasible" would
                // under-report a maximization bound.
                if let Some(c) = collector.as_deref_mut() {
                    c.uncertifiable = true;
                }
                return Ok(relax);
            }
            SolveStatus::Optimal => {}
            // A pure-LP relaxation never reports BudgetExceeded (the
            // simplex signals exhaustion through `LpError::BudgetExceeded`,
            // handled above); treat it like exhaustion defensively.
            SolveStatus::BudgetExceeded { .. } => {
                stack.push(node);
                if let Some(c) = collector.as_deref_mut() {
                    drain_open_nodes(c, &stack);
                }
                return Ok(anytime_solution(minimize, &stack, &incumbent));
            }
        }
        // Remember the root's optimal basis for the caller's next related
        // solve (per-label encodings sharing one relaxation).
        if node.fixes.is_empty() {
            if let Some(b) = &relax_basis {
                cache.basis = Some(b.clone());
            }
        }
        // Children start the dual simplex from this node's optimal basis;
        // when the solve came back basis-less (cold fallback ended with an
        // artificial still basic), they inherit the nearest ancestor's.
        let child_warm = relax_basis.map(Rc::new).or_else(|| node.warm.clone());
        // Bound pruning.
        if let Some(best) = &incumbent {
            let worse = if minimize {
                relax.objective >= best.objective - 1e-9
            } else {
                relax.objective <= best.objective + 1e-9
            };
            if worse {
                // Certified mode: a bound-pruned node is a leaf; its own
                // optimal duals prove its relaxation objective, which the
                // final incumbent dominates.
                if let Some(c) = collector.as_deref_mut() {
                    c.leaf(
                        &node.fixes,
                        LeafProof::Bound {
                            duals: relax.duals.clone(),
                        },
                    );
                }
                crate::metrics::MILP_NODES_PRUNED.inc();
                continue;
            }
        }
        // Find the most fractional integer variable.
        let mut branch_var = None;
        let mut best_frac = opts.int_tol;
        for &v in &int_vars {
            let x = relax.values[v];
            let frac = (x - x.round()).abs();
            if frac > best_frac {
                best_frac = frac;
                branch_var = Some(v);
            }
        }
        match branch_var {
            None => {
                // Certified mode: an integral node is a leaf proved by its
                // own duals whether or not it improves the incumbent.
                if let Some(c) = collector.as_deref_mut() {
                    c.leaf(
                        &node.fixes,
                        LeafProof::Bound {
                            duals: relax.duals.clone(),
                        },
                    );
                }
                // Integral: candidate incumbent.
                let better = match &incumbent {
                    None => true,
                    Some(best) => {
                        if minimize {
                            relax.objective < best.objective - 1e-9
                        } else {
                            relax.objective > best.objective + 1e-9
                        }
                    }
                };
                if better {
                    crate::metrics::MILP_INCUMBENT_UPDATES.inc();
                    incumbent = Some(relax);
                }
            }
            Some(v) => {
                let x = relax.values[v];
                let floor = x.floor();
                let mut down = node.fixes.clone();
                down.push((v, f64::NEG_INFINITY, floor));
                let mut up = node.fixes.clone();
                up.push((v, floor + 1.0, f64::INFINITY));
                // Children inherit this node's relaxation objective as
                // their sound bound (restricting the feasible set can only
                // worsen the optimum).
                let bound = relax.objective;
                // Certified mode: children also inherit this node's duals,
                // the proof of record should they be cut off open.
                let child_duals = collector
                    .is_some()
                    .then(|| Rc::new(std::mem::take(&mut relax.duals)));
                // Explore the side nearest the fractional value first.
                let up = Node {
                    fixes: up,
                    bound,
                    warm: child_warm.clone(),
                    duals: child_duals.clone(),
                };
                let down = Node {
                    fixes: down,
                    bound,
                    warm: child_warm,
                    duals: child_duals,
                };
                if x - floor < 0.5 {
                    stack.push(up);
                    stack.push(down);
                } else {
                    stack.push(down);
                    stack.push(up);
                }
            }
        }
    }
    Ok(incumbent.unwrap_or(Solution {
        status: SolveStatus::Infeasible,
        objective: 0.0,
        values: Vec::new(),
        duals: Vec::new(),
        farkas: Vec::new(),
    }))
}

#[cfg(test)]
mod tests {
    use crate::{Budget, Direction, LinExpr, LpProblem, MilpOptions, Sense, SolveStatus};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::time::{Duration, Instant};

    /// A maximization knapsack whose LP relaxation is fractional, so branch
    /// & bound must explore several nodes.
    fn knapsack() -> LpProblem {
        let mut p = LpProblem::new();
        let vars: Vec<_> = (0..6).map(|_| p.add_binary_var()).collect();
        let weights = [2.0, 3.0, 1.0, 4.0, 2.0, 3.0];
        let profits = [5.0, 4.0, 3.0, 7.0, 4.0, 5.0];
        let mut cap = LinExpr::new();
        let mut obj = LinExpr::new();
        for (i, &v) in vars.iter().enumerate() {
            cap.push(weights[i], v);
            obj.push(profits[i], v);
        }
        p.add_constraint(cap, Sense::Le, 7.0);
        p.set_objective(Direction::Maximize, obj);
        p
    }

    #[test]
    fn knapsack_is_solved_exactly() {
        // max 5a + 4b + 3c s.t. 2a + 3b + c ≤ 5, binaries → a=1,c=1 (+b? 2+3+1=6>5)
        // best: a + c = 8 with weight 3; a + b = 9 weight 5 → optimal 9.
        let mut p = LpProblem::new();
        let a = p.add_binary_var();
        let b = p.add_binary_var();
        let c = p.add_binary_var();
        p.add_constraint(
            LinExpr::new().term(2.0, a).term(3.0, b).term(1.0, c),
            Sense::Le,
            5.0,
        );
        p.set_objective(
            Direction::Maximize,
            LinExpr::new().term(5.0, a).term(4.0, b).term(3.0, c),
        );
        let sol = p.solve_milp().unwrap();
        assert!(sol.is_optimal());
        assert!((sol.objective - 9.0).abs() < 1e-6, "{}", sol.objective);
        for &v in &sol.values {
            assert!((v - v.round()).abs() < 1e-6);
        }
    }

    #[test]
    fn relaxation_differs_from_milp() {
        // max x s.t. 2x ≤ 3, x binary → LP gives 1.0 (capped by bound),
        // use 2x ≤ 1 to force fractional: LP 0.5, MILP 0.
        let mut p = LpProblem::new();
        let x = p.add_binary_var();
        p.add_constraint(LinExpr::new().term(2.0, x), Sense::Le, 1.0);
        p.set_objective(Direction::Maximize, LinExpr::new().term(1.0, x));
        let lp = p.solve().unwrap();
        assert!((lp.objective - 0.5).abs() < 1e-7);
        let milp = p.solve_milp().unwrap();
        assert!(milp.objective.abs() < 1e-7);
    }

    #[test]
    fn infeasible_milp_reports_infeasible() {
        let mut p = LpProblem::new();
        let x = p.add_binary_var();
        let y = p.add_binary_var();
        p.add_constraint(LinExpr::new().term(1.0, x).term(1.0, y), Sense::Ge, 3.0);
        let sol = p.solve_milp().unwrap();
        assert_eq!(sol.status, SolveStatus::Infeasible);
    }

    #[test]
    fn node_limit_returns_anytime_bound_not_error() {
        let p = knapsack();
        let exact = p.solve_milp().unwrap();
        assert!(exact.is_optimal());
        let opts = MilpOptions {
            max_nodes: 1,
            ..MilpOptions::default()
        };
        let sol = p.solve_milp_with(&opts).unwrap();
        let SolveStatus::BudgetExceeded { best_bound } = sol.status else {
            panic!("expected BudgetExceeded, got {:?}", sol.status);
        };
        // The dual bound must be sound: never below the true maximum.
        assert!(
            best_bound >= exact.objective - 1e-9,
            "dual bound {best_bound} < optimum {}",
            exact.objective
        );
        assert_eq!(sol.objective, best_bound);
    }

    #[test]
    fn expired_deadline_yields_sound_bound_immediately() {
        let p = knapsack();
        let exact = p.solve_milp().unwrap().objective;
        let budget = Budget::default().with_deadline(Instant::now() - Duration::from_millis(1));
        let start = Instant::now();
        let sol = p
            .solve_milp_with_budget(&MilpOptions::default(), &budget)
            .unwrap();
        assert!(
            start.elapsed() < Duration::from_millis(500),
            "expired budget must return promptly"
        );
        let SolveStatus::BudgetExceeded { best_bound } = sol.status else {
            panic!("expected BudgetExceeded, got {:?}", sol.status);
        };
        assert!(best_bound >= exact - 1e-9);
    }

    #[test]
    fn cancel_mid_solve_interrupts_lp() {
        // A pre-set cancel flag makes the bare LP error with BudgetExceeded
        // on its first pivot (no sound partial bound exists for an LP).
        let mut p = LpProblem::new();
        let x = p.add_var(0.0, 10.0);
        let y = p.add_var(0.0, 10.0);
        p.add_constraint(LinExpr::new().term(1.0, x).term(2.0, y), Sense::Le, 4.0);
        p.set_objective(
            Direction::Maximize,
            LinExpr::new().term(1.0, x).term(1.0, y),
        );
        let flag = AtomicBool::new(true);
        let budget = Budget::default().with_cancel(&flag);
        let err = p
            .solve_with_budget(&crate::SimplexOptions::default(), &budget)
            .unwrap_err();
        assert_eq!(err, crate::LpError::BudgetExceeded);
        flag.store(false, Ordering::SeqCst);
        assert!(p
            .solve_with_budget(&crate::SimplexOptions::default(), &budget)
            .unwrap()
            .is_optimal());
    }

    #[test]
    fn generous_budget_matches_unbudgeted_solve() {
        let p = knapsack();
        let exact = p.solve_milp().unwrap();
        let budget = Budget::default().with_deadline_in(Duration::from_secs(60));
        let budgeted = p
            .solve_milp_with_budget(&MilpOptions::default(), &budget)
            .unwrap();
        assert!(budgeted.is_optimal());
        assert!((budgeted.objective - exact.objective).abs() < 1e-9);
    }

    #[test]
    fn warm_start_off_matches_warm_start_on() {
        let p = knapsack();
        let warm = p.solve_milp().unwrap();
        let cold = p
            .solve_milp_with(&MilpOptions {
                warm_start: false,
                ..MilpOptions::default()
            })
            .unwrap();
        assert_eq!(warm.status, cold.status);
        assert!(
            (warm.objective - cold.objective).abs() < 1e-9,
            "warm {} vs cold {}",
            warm.objective,
            cold.objective
        );
        assert_eq!(warm.values, cold.values);
    }

    #[test]
    fn basis_cache_reuses_across_related_solves() {
        // Two MILP solves on the same model through one cache: the second
        // must return the identical result while seeding from the first's
        // root basis (counter deltas are ≥-asserted because unrelated
        // parallel tests also warm-start).
        let p = knapsack();
        let budget = Budget::unlimited();
        let mut cache = crate::BasisCache::new();
        let first = p
            .solve_milp_cached(&MilpOptions::default(), &budget, &mut cache)
            .unwrap();
        assert!(first.is_optimal());
        assert!(cache.is_warm(), "root basis must be cached");
        let before = crate::metrics::LP_WARM_STARTS.get();
        let second = p
            .solve_milp_cached(&MilpOptions::default(), &budget, &mut cache)
            .unwrap();
        assert_eq!(first, second);
        assert!(
            crate::metrics::LP_WARM_STARTS.get() > before,
            "cached solve must warm-start at least its root"
        );
    }

    #[test]
    fn mixed_continuous_and_binary() {
        // min y s.t. y ≥ x - 0.3, y ≥ 0.3 - x, x binary, y free.
        // x=0 → y ≥ 0.3; x=1 → y ≥ 0.7 → optimal y = 0.3.
        let mut p = LpProblem::new();
        let x = p.add_binary_var();
        let y = p.add_free_var();
        p.add_constraint(LinExpr::new().term(1.0, y).term(-1.0, x), Sense::Ge, -0.3);
        p.add_constraint(LinExpr::new().term(1.0, y).term(1.0, x), Sense::Ge, 0.3);
        p.set_objective(Direction::Minimize, LinExpr::new().term(1.0, y));
        let sol = p.solve_milp().unwrap();
        assert!((sol.objective - 0.3).abs() < 1e-6, "{}", sol.objective);
        assert!(sol.value(x).abs() < 1e-6);
    }
}
