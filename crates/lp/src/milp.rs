//! Branch & bound for mixed-integer linear programs.
//!
//! The RaVeN encodings only use integrality on a handful of *specification*
//! variables (one indicator per execution for UAP accuracy counting, one per
//! output bit for hamming distance), never on per-neuron variables. The
//! search tree therefore stays tiny (≤ 2^k nodes), matching the paper's
//! scalable MILP configuration.

use crate::{Budget, LpError, LpProblem, SimplexOptions, Solution, SolveStatus};

/// Options for [`LpProblem::solve_milp_with`].
#[derive(Debug, Clone, PartialEq)]
pub struct MilpOptions {
    /// LP options used at every node.
    pub simplex: SimplexOptions,
    /// Hard limit on explored nodes.
    pub max_nodes: usize,
    /// Integrality tolerance.
    pub int_tol: f64,
}

impl Default for MilpOptions {
    fn default() -> Self {
        Self {
            simplex: SimplexOptions::default(),
            max_nodes: 10_000,
            int_tol: 1e-6,
        }
    }
}

struct Node {
    /// `(var index, lo, hi)` overrides accumulated along the branch.
    fixes: Vec<(usize, f64, f64)>,
    /// Parent relaxation objective: a sound bound on every leaf below this
    /// node (infinite in the optimistic direction at the root, where no
    /// relaxation has been solved yet).
    bound: f64,
}

/// The anytime result when budget or node limit stops the search: the
/// sound dual bound is the optimistic-direction extreme over the incumbent
/// and every open node's parent relaxation bound.
fn anytime_solution(minimize: bool, stack: &[Node], incumbent: &Option<Solution>) -> Solution {
    crate::metrics::MILP_BUDGET_EXHAUSTED.inc();
    let mut bound = incumbent.as_ref().map_or(
        if minimize {
            f64::INFINITY
        } else {
            f64::NEG_INFINITY
        },
        |s| s.objective,
    );
    for node in stack {
        bound = if minimize {
            bound.min(node.bound)
        } else {
            bound.max(node.bound)
        };
    }
    Solution {
        status: SolveStatus::BudgetExceeded { best_bound: bound },
        objective: bound,
        values: incumbent
            .as_ref()
            .map(|s| s.values.clone())
            .unwrap_or_default(),
        duals: Vec::new(),
    }
}

/// Solves `problem` by LP-based branch & bound over its integer variables.
pub(crate) fn solve(
    problem: &LpProblem,
    opts: &MilpOptions,
    budget: &Budget<'_>,
) -> Result<Solution, LpError> {
    let int_vars: Vec<usize> = problem
        .integer
        .iter()
        .enumerate()
        .filter_map(|(i, &b)| b.then_some(i))
        .collect();
    if int_vars.is_empty() {
        return problem.solve_with_budget(&opts.simplex, budget);
    }
    let minimize = matches!(problem.direction, crate::Direction::Minimize);
    let root_bound = if minimize {
        f64::NEG_INFINITY
    } else {
        f64::INFINITY
    };
    // Best-known integral solution.
    let mut incumbent: Option<Solution> = None;
    let mut stack = vec![Node {
        fixes: Vec::new(),
        bound: root_bound,
    }];
    let mut nodes = 0usize;
    while let Some(node) = stack.pop() {
        // Anytime exit: when the budget expires or the node limit is hit
        // with work remaining, report the best sound incumbent/dual bound
        // instead of discarding everything already explored.
        if nodes >= opts.max_nodes || budget.exhausted() {
            stack.push(node);
            return Ok(anytime_solution(minimize, &stack, &incumbent));
        }
        nodes += 1;
        crate::metrics::MILP_NODES.inc();
        let mut sub = problem.clone();
        for &(v, lo, hi) in &node.fixes {
            let (cur_lo, cur_hi) = sub.bounds[v];
            let new_lo = cur_lo.max(lo);
            let new_hi = cur_hi.min(hi);
            if new_lo > new_hi {
                // Empty domain: prune.
                sub.bounds[v] = (0.0, -1.0);
            } else {
                sub.bounds[v] = (new_lo, new_hi);
            }
        }
        if sub.bounds.iter().any(|&(lo, hi)| lo > hi) {
            crate::metrics::MILP_NODES_PRUNED.inc();
            continue;
        }
        // Propagate solver failures: silently pruning a node whose
        // relaxation did not solve would under-estimate a maximization
        // objective and make verification results unsound.
        let relax = match sub.solve_with_budget(&opts.simplex, budget) {
            Ok(r) => r,
            Err(LpError::BudgetExceeded) => {
                // The budget died inside this node's relaxation: the node
                // is unexplored, so fold it back under its parent bound.
                stack.push(node);
                return Ok(anytime_solution(minimize, &stack, &incumbent));
            }
            Err(e) => return Err(e),
        };
        match relax.status {
            SolveStatus::Infeasible => {
                crate::metrics::MILP_NODES_PRUNED.inc();
                continue;
            }
            SolveStatus::Unbounded => {
                // An unbounded relaxation at the root means the MILP is
                // unbounded or infeasible; report unbounded conservatively.
                if node.fixes.is_empty() {
                    return Ok(relax);
                }
                crate::metrics::MILP_NODES_PRUNED.inc();
                continue;
            }
            SolveStatus::Optimal => {}
            // A pure-LP relaxation never reports BudgetExceeded (the
            // simplex signals exhaustion through `LpError::BudgetExceeded`,
            // handled above); treat it like exhaustion defensively.
            SolveStatus::BudgetExceeded { .. } => {
                stack.push(node);
                return Ok(anytime_solution(minimize, &stack, &incumbent));
            }
        }
        // Bound pruning.
        if let Some(best) = &incumbent {
            let worse = if minimize {
                relax.objective >= best.objective - 1e-9
            } else {
                relax.objective <= best.objective + 1e-9
            };
            if worse {
                crate::metrics::MILP_NODES_PRUNED.inc();
                continue;
            }
        }
        // Find the most fractional integer variable.
        let mut branch_var = None;
        let mut best_frac = opts.int_tol;
        for &v in &int_vars {
            let x = relax.values[v];
            let frac = (x - x.round()).abs();
            if frac > best_frac {
                best_frac = frac;
                branch_var = Some(v);
            }
        }
        match branch_var {
            None => {
                // Integral: candidate incumbent.
                let better = match &incumbent {
                    None => true,
                    Some(best) => {
                        if minimize {
                            relax.objective < best.objective - 1e-9
                        } else {
                            relax.objective > best.objective + 1e-9
                        }
                    }
                };
                if better {
                    crate::metrics::MILP_INCUMBENT_UPDATES.inc();
                    incumbent = Some(relax);
                }
            }
            Some(v) => {
                let x = relax.values[v];
                let floor = x.floor();
                let mut down = node.fixes.clone();
                down.push((v, f64::NEG_INFINITY, floor));
                let mut up = node.fixes.clone();
                up.push((v, floor + 1.0, f64::INFINITY));
                // Children inherit this node's relaxation objective as
                // their sound bound (restricting the feasible set can only
                // worsen the optimum).
                let bound = relax.objective;
                // Explore the side nearest the fractional value first.
                if x - floor < 0.5 {
                    stack.push(Node { fixes: up, bound });
                    stack.push(Node { fixes: down, bound });
                } else {
                    stack.push(Node { fixes: down, bound });
                    stack.push(Node { fixes: up, bound });
                }
            }
        }
    }
    Ok(incumbent.unwrap_or(Solution {
        status: SolveStatus::Infeasible,
        objective: 0.0,
        values: Vec::new(),
        duals: Vec::new(),
    }))
}

#[cfg(test)]
mod tests {
    use crate::{Budget, Direction, LinExpr, LpProblem, MilpOptions, Sense, SolveStatus};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::time::{Duration, Instant};

    /// A maximization knapsack whose LP relaxation is fractional, so branch
    /// & bound must explore several nodes.
    fn knapsack() -> LpProblem {
        let mut p = LpProblem::new();
        let vars: Vec<_> = (0..6).map(|_| p.add_binary_var()).collect();
        let weights = [2.0, 3.0, 1.0, 4.0, 2.0, 3.0];
        let profits = [5.0, 4.0, 3.0, 7.0, 4.0, 5.0];
        let mut cap = LinExpr::new();
        let mut obj = LinExpr::new();
        for (i, &v) in vars.iter().enumerate() {
            cap.push(weights[i], v);
            obj.push(profits[i], v);
        }
        p.add_constraint(cap, Sense::Le, 7.0);
        p.set_objective(Direction::Maximize, obj);
        p
    }

    #[test]
    fn knapsack_is_solved_exactly() {
        // max 5a + 4b + 3c s.t. 2a + 3b + c ≤ 5, binaries → a=1,c=1 (+b? 2+3+1=6>5)
        // best: a + c = 8 with weight 3; a + b = 9 weight 5 → optimal 9.
        let mut p = LpProblem::new();
        let a = p.add_binary_var();
        let b = p.add_binary_var();
        let c = p.add_binary_var();
        p.add_constraint(
            LinExpr::new().term(2.0, a).term(3.0, b).term(1.0, c),
            Sense::Le,
            5.0,
        );
        p.set_objective(
            Direction::Maximize,
            LinExpr::new().term(5.0, a).term(4.0, b).term(3.0, c),
        );
        let sol = p.solve_milp().unwrap();
        assert!(sol.is_optimal());
        assert!((sol.objective - 9.0).abs() < 1e-6, "{}", sol.objective);
        for &v in &sol.values {
            assert!((v - v.round()).abs() < 1e-6);
        }
    }

    #[test]
    fn relaxation_differs_from_milp() {
        // max x s.t. 2x ≤ 3, x binary → LP gives 1.0 (capped by bound),
        // use 2x ≤ 1 to force fractional: LP 0.5, MILP 0.
        let mut p = LpProblem::new();
        let x = p.add_binary_var();
        p.add_constraint(LinExpr::new().term(2.0, x), Sense::Le, 1.0);
        p.set_objective(Direction::Maximize, LinExpr::new().term(1.0, x));
        let lp = p.solve().unwrap();
        assert!((lp.objective - 0.5).abs() < 1e-7);
        let milp = p.solve_milp().unwrap();
        assert!(milp.objective.abs() < 1e-7);
    }

    #[test]
    fn infeasible_milp_reports_infeasible() {
        let mut p = LpProblem::new();
        let x = p.add_binary_var();
        let y = p.add_binary_var();
        p.add_constraint(LinExpr::new().term(1.0, x).term(1.0, y), Sense::Ge, 3.0);
        let sol = p.solve_milp().unwrap();
        assert_eq!(sol.status, SolveStatus::Infeasible);
    }

    #[test]
    fn node_limit_returns_anytime_bound_not_error() {
        let p = knapsack();
        let exact = p.solve_milp().unwrap();
        assert!(exact.is_optimal());
        let opts = MilpOptions {
            max_nodes: 1,
            ..MilpOptions::default()
        };
        let sol = p.solve_milp_with(&opts).unwrap();
        let SolveStatus::BudgetExceeded { best_bound } = sol.status else {
            panic!("expected BudgetExceeded, got {:?}", sol.status);
        };
        // The dual bound must be sound: never below the true maximum.
        assert!(
            best_bound >= exact.objective - 1e-9,
            "dual bound {best_bound} < optimum {}",
            exact.objective
        );
        assert_eq!(sol.objective, best_bound);
    }

    #[test]
    fn expired_deadline_yields_sound_bound_immediately() {
        let p = knapsack();
        let exact = p.solve_milp().unwrap().objective;
        let budget = Budget::default().with_deadline(Instant::now() - Duration::from_millis(1));
        let start = Instant::now();
        let sol = p
            .solve_milp_with_budget(&MilpOptions::default(), &budget)
            .unwrap();
        assert!(
            start.elapsed() < Duration::from_millis(500),
            "expired budget must return promptly"
        );
        let SolveStatus::BudgetExceeded { best_bound } = sol.status else {
            panic!("expected BudgetExceeded, got {:?}", sol.status);
        };
        assert!(best_bound >= exact - 1e-9);
    }

    #[test]
    fn cancel_mid_solve_interrupts_lp() {
        // A pre-set cancel flag makes the bare LP error with BudgetExceeded
        // on its first pivot (no sound partial bound exists for an LP).
        let mut p = LpProblem::new();
        let x = p.add_var(0.0, 10.0);
        let y = p.add_var(0.0, 10.0);
        p.add_constraint(LinExpr::new().term(1.0, x).term(2.0, y), Sense::Le, 4.0);
        p.set_objective(
            Direction::Maximize,
            LinExpr::new().term(1.0, x).term(1.0, y),
        );
        let flag = AtomicBool::new(true);
        let budget = Budget::default().with_cancel(&flag);
        let err = p
            .solve_with_budget(&crate::SimplexOptions::default(), &budget)
            .unwrap_err();
        assert_eq!(err, crate::LpError::BudgetExceeded);
        flag.store(false, Ordering::SeqCst);
        assert!(p
            .solve_with_budget(&crate::SimplexOptions::default(), &budget)
            .unwrap()
            .is_optimal());
    }

    #[test]
    fn generous_budget_matches_unbudgeted_solve() {
        let p = knapsack();
        let exact = p.solve_milp().unwrap();
        let budget = Budget::default().with_deadline_in(Duration::from_secs(60));
        let budgeted = p
            .solve_milp_with_budget(&MilpOptions::default(), &budget)
            .unwrap();
        assert!(budgeted.is_optimal());
        assert!((budgeted.objective - exact.objective).abs() < 1e-9);
    }

    #[test]
    fn mixed_continuous_and_binary() {
        // min y s.t. y ≥ x - 0.3, y ≥ 0.3 - x, x binary, y free.
        // x=0 → y ≥ 0.3; x=1 → y ≥ 0.7 → optimal y = 0.3.
        let mut p = LpProblem::new();
        let x = p.add_binary_var();
        let y = p.add_free_var();
        p.add_constraint(LinExpr::new().term(1.0, y).term(-1.0, x), Sense::Ge, -0.3);
        p.add_constraint(LinExpr::new().term(1.0, y).term(1.0, x), Sense::Ge, 0.3);
        p.set_objective(Direction::Minimize, LinExpr::new().term(1.0, y));
        let sol = p.solve_milp().unwrap();
        assert!((sol.objective - 0.3).abs() < 1e-6, "{}", sol.objective);
        assert!(sol.value(x).abs() < 1e-6);
    }
}
