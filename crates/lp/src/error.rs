use std::error::Error;
use std::fmt;

/// Failures of the LP/MILP machinery that are not well-defined solver
/// outcomes (infeasible/unbounded are *statuses*, not errors).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LpError {
    /// The simplex iteration limit was exceeded.
    IterationLimit {
        /// The limit that was hit.
        limit: usize,
    },
    /// The basis matrix became numerically singular.
    SingularBasis,
    /// The branch-and-bound node limit was exceeded.
    NodeLimit {
        /// The limit that was hit.
        limit: usize,
    },
    /// Problem construction was invalid (e.g. inverted bounds).
    InvalidModel(String),
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::IterationLimit { limit } => {
                write!(f, "simplex exceeded {limit} iterations")
            }
            LpError::SingularBasis => write!(f, "basis matrix is singular"),
            LpError::NodeLimit { limit } => {
                write!(f, "branch-and-bound exceeded {limit} nodes")
            }
            LpError::InvalidModel(msg) => write!(f, "invalid model: {msg}"),
        }
    }
}

impl Error for LpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_limits() {
        assert!(LpError::IterationLimit { limit: 5 }
            .to_string()
            .contains('5'));
        assert!(LpError::NodeLimit { limit: 9 }.to_string().contains('9'));
    }
}
