use std::error::Error;
use std::fmt;

/// Failures of the LP/MILP machinery that are not well-defined solver
/// outcomes (infeasible/unbounded are *statuses*, not errors).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LpError {
    /// The simplex iteration limit was exceeded.
    IterationLimit {
        /// The limit that was hit.
        limit: usize,
    },
    /// The basis matrix became numerically singular.
    SingularBasis,
    /// The branch-and-bound node limit was exceeded.
    ///
    /// No longer produced by [`crate::LpProblem::solve_milp`]: hitting
    /// `max_nodes` now returns the anytime bound through
    /// [`crate::SolveStatus::BudgetExceeded`] instead of discarding it.
    NodeLimit {
        /// The limit that was hit.
        limit: usize,
    },
    /// A pure-LP solve was interrupted by its [`crate::Budget`] mid-pivot.
    ///
    /// An interrupted primal simplex has no sound bound to report (its
    /// iterate under-estimates a maximization objective), so LP-level
    /// exhaustion is an error; the MILP layer catches it and folds the
    /// interrupted node back into its anytime dual bound.
    BudgetExceeded,
    /// Problem construction was invalid (e.g. inverted bounds).
    InvalidModel(String),
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::IterationLimit { limit } => {
                write!(f, "simplex exceeded {limit} iterations")
            }
            LpError::SingularBasis => write!(f, "basis matrix is singular"),
            LpError::NodeLimit { limit } => {
                write!(f, "branch-and-bound exceeded {limit} nodes")
            }
            LpError::BudgetExceeded => {
                write!(f, "solve budget exhausted (deadline or cancellation)")
            }
            LpError::InvalidModel(msg) => write!(f, "invalid model: {msg}"),
        }
    }
}

impl Error for LpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_limits() {
        assert!(LpError::IterationLimit { limit: 5 }
            .to_string()
            .contains('5'));
        assert!(LpError::NodeLimit { limit: 9 }.to_string().contains('9'));
    }
}
