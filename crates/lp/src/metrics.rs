//! Solver telemetry: where the verifier's time actually goes.
//!
//! Branch-&-bound verifiers live or die by node-selection and bounding
//! cost, so the solver exports the raw work counters (pivots, nodes,
//! prunes, incumbents) that every perf investigation starts from. All
//! instruments are process-wide statics; see `raven-obs` for the
//! determinism contract (observe-only, never fed back into the search).

use raven_obs::{Counter, Desc, Histogram, MetricRef};

/// Simplex pivot iterations (both phases, all solves).
pub static SIMPLEX_PIVOTS: Counter = Counter::new();
/// LP solves started (including B&B node relaxations).
pub static LP_SOLVES: Counter = Counter::new();
/// Wall-clock seconds per LP solve (only recorded while telemetry is
/// enabled — the timer is clock-free otherwise).
pub static LP_SOLVE_SECONDS: Histogram = Histogram::new();
/// Rows dropped by presolve (singleton + redundant).
pub static PRESOLVE_ROWS_REMOVED: Counter = Counter::new();
/// Variable-bound tightenings applied by presolve.
pub static PRESOLVE_BOUNDS_TIGHTENED: Counter = Counter::new();
/// LP solves aborted by deadline/cancel (no sound partial bound).
pub static LP_BUDGET_EXHAUSTED: Counter = Counter::new();
/// LP solves that accepted a warm-start basis (dual- or primal-feasible
/// seed) instead of a two-phase cold start.
pub static LP_WARM_STARTS: Counter = Counter::new();
/// Dual-simplex pivot iterations (warm-started solves only; cold-start
/// pivots are counted by `SIMPLEX_PIVOTS`).
pub static LP_DUAL_PIVOTS: Counter = Counter::new();
/// Branch-&-bound nodes whose relaxation was solved.
pub static MILP_NODES: Counter = Counter::new();
/// Nodes discarded without branching (empty domain, infeasible
/// relaxation, or dominated by the incumbent).
pub static MILP_NODES_PRUNED: Counter = Counter::new();
/// Times a new best integral solution was installed.
pub static MILP_INCUMBENT_UPDATES: Counter = Counter::new();
/// B&B searches that stopped early (deadline, cancel, or node cap) and
/// returned an anytime bound instead of the exact optimum.
pub static MILP_BUDGET_EXHAUSTED: Counter = Counter::new();

/// Exposition table for this crate, in stable scrape order.
pub static DESCS: [Desc; 12] = [
    Desc {
        name: "raven_lp_simplex_pivots_total",
        help: "Simplex pivot iterations across all LP solves.",
        labels: "",
        metric: MetricRef::Counter(&SIMPLEX_PIVOTS),
    },
    Desc {
        name: "raven_lp_solves_total",
        help: "LP solves started, including branch-and-bound node relaxations.",
        labels: "",
        metric: MetricRef::Counter(&LP_SOLVES),
    },
    Desc {
        name: "raven_lp_solve_seconds",
        help: "Wall-clock seconds per LP solve (recorded while telemetry is enabled).",
        labels: "",
        metric: MetricRef::Histogram(&LP_SOLVE_SECONDS),
    },
    Desc {
        name: "raven_lp_presolve_rows_removed_total",
        help: "Constraint rows eliminated by presolve.",
        labels: "",
        metric: MetricRef::Counter(&PRESOLVE_ROWS_REMOVED),
    },
    Desc {
        name: "raven_lp_presolve_bounds_tightened_total",
        help: "Variable-bound tightenings applied by presolve.",
        labels: "",
        metric: MetricRef::Counter(&PRESOLVE_BOUNDS_TIGHTENED),
    },
    Desc {
        name: "raven_lp_budget_exhausted_total",
        help: "LP solves aborted by deadline or cancellation.",
        labels: "",
        metric: MetricRef::Counter(&LP_BUDGET_EXHAUSTED),
    },
    Desc {
        name: "raven_lp_warm_starts_total",
        help: "LP solves that accepted a warm-start basis instead of a cold start.",
        labels: "",
        metric: MetricRef::Counter(&LP_WARM_STARTS),
    },
    Desc {
        name: "raven_lp_dual_pivots_total",
        help: "Dual-simplex pivot iterations across warm-started LP solves.",
        labels: "",
        metric: MetricRef::Counter(&LP_DUAL_PIVOTS),
    },
    Desc {
        name: "raven_lp_milp_nodes_total",
        help: "Branch-and-bound nodes whose LP relaxation was solved.",
        labels: "",
        metric: MetricRef::Counter(&MILP_NODES),
    },
    Desc {
        name: "raven_lp_milp_nodes_pruned_total",
        help: "Branch-and-bound nodes discarded without branching.",
        labels: "",
        metric: MetricRef::Counter(&MILP_NODES_PRUNED),
    },
    Desc {
        name: "raven_lp_milp_incumbent_updates_total",
        help: "Times branch-and-bound installed a new best integral solution.",
        labels: "",
        metric: MetricRef::Counter(&MILP_INCUMBENT_UPDATES),
    },
    Desc {
        name: "raven_lp_milp_budget_exhausted_total",
        help: "Branch-and-bound searches stopped early with an anytime bound.",
        labels: "",
        metric: MetricRef::Counter(&MILP_BUDGET_EXHAUSTED),
    },
];
