//! Fault injection for solver chaos tests (test-support).
//!
//! The injection API is always present so callers compile identically with
//! and without chaos, but the injection *bodies* are compiled only under
//! `debug_assertions` (every `cargo test` dev-profile run) or the explicit
//! `chaos` feature; a release build pays nothing.
//!
//! The only solver fault worth simulating is a **stall**: a pivot loop that
//! still makes progress but far too slowly, which is exactly the failure
//! mode deadlines exist for. State is process-global — chaos tests that set
//! a stall must serialize themselves (see `tests/chaos.rs`) and clear it.

#[cfg(any(debug_assertions, feature = "chaos"))]
use std::sync::atomic::{AtomicU64, Ordering};

#[cfg(any(debug_assertions, feature = "chaos"))]
static PIVOT_STALL_MICROS: AtomicU64 = AtomicU64::new(0);

/// Makes every subsequent simplex pivot sleep for `micros` microseconds
/// (0 clears the stall). No-op in release builds without the `chaos`
/// feature.
pub fn set_pivot_stall_micros(micros: u64) {
    #[cfg(any(debug_assertions, feature = "chaos"))]
    PIVOT_STALL_MICROS.store(micros, Ordering::SeqCst);
    #[cfg(not(any(debug_assertions, feature = "chaos")))]
    let _ = micros;
}

/// Clears all injected solver faults.
pub fn clear() {
    set_pivot_stall_micros(0);
}

/// Called once per simplex pivot iteration; sleeps when a stall is injected.
#[inline]
pub(crate) fn pivot_stall_point() {
    #[cfg(any(debug_assertions, feature = "chaos"))]
    {
        let micros = PIVOT_STALL_MICROS.load(Ordering::Relaxed);
        if micros > 0 {
            std::thread::sleep(std::time::Duration::from_micros(micros));
        }
    }
}
