//! Fault injection for solver chaos tests (test-support).
//!
//! The injection API is always present so callers compile identically with
//! and without chaos, but the injection *bodies* are compiled only under
//! `debug_assertions` (every `cargo test` dev-profile run) or the explicit
//! `chaos` feature; a release build pays nothing.
//!
//! Two solver faults are worth simulating:
//!
//! * a **stall** — a pivot loop that still makes progress but far too
//!   slowly, which is exactly the failure mode deadlines exist for;
//! * a **deadline blackout** — [`crate::Budget::exhausted`] stops seeing
//!   its wall-clock deadline (cancellation still works), simulating a
//!   wedged solver whose budget failed to fire. This is the failure mode
//!   the `raven-serve` watchdog exists for: it detects the overdue job
//!   and cancels it through the still-functional cancel flag.
//!
//! State is process-global — chaos tests that arm a fault must serialize
//! themselves (see `tests/chaos.rs`) and clear it.

#[cfg(any(debug_assertions, feature = "chaos"))]
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

#[cfg(any(debug_assertions, feature = "chaos"))]
static PIVOT_STALL_MICROS: AtomicU64 = AtomicU64::new(0);

#[cfg(any(debug_assertions, feature = "chaos"))]
static DEADLINE_BLACKOUT: AtomicBool = AtomicBool::new(false);

/// Countdown to a forced-Unbounded LP solve; `u64::MAX` means disarmed.
#[cfg(any(debug_assertions, feature = "chaos"))]
static FORCE_UNBOUNDED_AFTER: AtomicU64 = AtomicU64::new(u64::MAX);

/// Makes every subsequent simplex pivot sleep for `micros` microseconds
/// (0 clears the stall). No-op in release builds without the `chaos`
/// feature.
pub fn set_pivot_stall_micros(micros: u64) {
    #[cfg(any(debug_assertions, feature = "chaos"))]
    PIVOT_STALL_MICROS.store(micros, Ordering::SeqCst);
    #[cfg(not(any(debug_assertions, feature = "chaos")))]
    let _ = micros;
}

/// Makes every [`crate::Budget`] ignore its wall-clock deadline (cancel
/// flags keep working), simulating a solver that wedges past its budget.
/// No-op in release builds without the `chaos` feature.
pub fn set_deadline_blackout(on: bool) {
    #[cfg(any(debug_assertions, feature = "chaos"))]
    DEADLINE_BLACKOUT.store(on, Ordering::SeqCst);
    #[cfg(not(any(debug_assertions, feature = "chaos")))]
    let _ = on;
}

/// Whether the deadline blackout is armed.
#[inline]
pub(crate) fn deadline_blackout() -> bool {
    #[cfg(any(debug_assertions, feature = "chaos"))]
    {
        DEADLINE_BLACKOUT.load(Ordering::Relaxed)
    }
    #[cfg(not(any(debug_assertions, feature = "chaos")))]
    {
        false
    }
}

/// Arms a one-shot fault that makes an upcoming LP solve report
/// `Unbounded` without running the simplex: the fault fires on the solve
/// after skipping `solves` of them (0 = the very next solve), then
/// disarms itself. `u64::MAX` disarms immediately.
///
/// Unbounded *child* relaxations are mathematically unreachable when
/// branching only tightens bounds (a child's recession cone is contained
/// in its parent's), so this is the only way to regression-test how
/// branch & bound reacts to one. No-op in release builds without the
/// `chaos` feature.
pub fn set_force_unbounded_after(solves: u64) {
    #[cfg(any(debug_assertions, feature = "chaos"))]
    FORCE_UNBOUNDED_AFTER.store(solves, Ordering::SeqCst);
    #[cfg(not(any(debug_assertions, feature = "chaos")))]
    let _ = solves;
}

/// Called at every LP solve entry; counts down the armed fault and reports
/// whether this solve must pretend to be unbounded.
#[inline]
pub(crate) fn take_forced_unbounded() -> bool {
    #[cfg(any(debug_assertions, feature = "chaos"))]
    {
        let fired = FORCE_UNBOUNDED_AFTER.fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| {
            match v {
                u64::MAX => None,    // disarmed
                0 => Some(u64::MAX), // fire and disarm
                n => Some(n - 1),    // keep counting down
            }
        });
        matches!(fired, Ok(0))
    }
    #[cfg(not(any(debug_assertions, feature = "chaos")))]
    {
        false
    }
}

/// Clears all injected solver faults.
pub fn clear() {
    set_pivot_stall_micros(0);
    set_deadline_blackout(false);
    set_force_unbounded_after(u64::MAX);
}

/// Called once per simplex pivot iteration; sleeps when a stall is injected.
#[inline]
pub(crate) fn pivot_stall_point() {
    #[cfg(any(debug_assertions, feature = "chaos"))]
    {
        let micros = PIVOT_STALL_MICROS.load(Ordering::Relaxed);
        if micros > 0 {
            std::thread::sleep(std::time::Duration::from_micros(micros));
        }
    }
}
