//! Export to the CPLEX LP text format.
//!
//! Lets any encoded relational problem be inspected by hand or fed to an
//! external solver (Gurobi, CPLEX, HiGHS, glpsol) for cross-checking the
//! in-repo simplex — the debugging path we used while validating the
//! reproduction.

use crate::{Direction, LpProblem, Sense};
use std::fmt::Write as _;

fn var_name(i: usize) -> String {
    format!("x{i}")
}

fn write_terms(out: &mut String, terms: &[(crate::VarId, f64)]) {
    let mut first = true;
    for &(v, c) in terms {
        if c == 0.0 {
            continue;
        }
        if first {
            let _ = write!(out, "{c} {}", var_name(v.index()));
            first = false;
        } else if c >= 0.0 {
            let _ = write!(out, " + {c} {}", var_name(v.index()));
        } else {
            let _ = write!(out, " - {} {}", -c, var_name(v.index()));
        }
    }
    if first {
        out.push('0');
    }
}

/// Serializes `problem` in CPLEX LP format.
///
/// # Examples
///
/// ```
/// use raven_lp::{Direction, LinExpr, LpProblem, Sense, to_lp_format};
///
/// let mut p = LpProblem::new();
/// let x = p.add_var(0.0, 1.0);
/// p.add_constraint(LinExpr::new().term(2.0, x), Sense::Le, 1.5);
/// p.set_objective(Direction::Maximize, LinExpr::new().term(1.0, x));
/// let text = to_lp_format(&p);
/// assert!(text.contains("Maximize"));
/// assert!(text.contains("c0: 2 x0 <= 1.5"));
/// ```
pub fn to_lp_format(problem: &LpProblem) -> String {
    let mut out = String::new();
    out.push_str(match problem.direction {
        Direction::Minimize => "Minimize\n",
        Direction::Maximize => "Maximize\n",
    });
    out.push_str(" obj: ");
    write_terms(&mut out, problem.objective.terms());
    out.push_str("\nSubject To\n");
    for (i, row) in problem.rows.iter().enumerate() {
        let _ = write!(out, " c{i}: ");
        write_terms(&mut out, row.expr.terms());
        let op = match row.sense {
            Sense::Le => "<=",
            Sense::Ge => ">=",
            Sense::Eq => "=",
        };
        let _ = writeln!(out, " {op} {}", row.rhs);
    }
    out.push_str("Bounds\n");
    for (i, &(lo, hi)) in problem.bounds.iter().enumerate() {
        let name = var_name(i);
        match (lo.is_finite(), hi.is_finite()) {
            (true, true) => {
                let _ = writeln!(out, " {lo} <= {name} <= {hi}");
            }
            (true, false) => {
                let _ = writeln!(out, " {name} >= {lo}");
            }
            (false, true) => {
                let _ = writeln!(out, " {name} <= {hi}");
            }
            (false, false) => {
                let _ = writeln!(out, " {name} free");
            }
        }
    }
    let binaries: Vec<String> = problem
        .integer
        .iter()
        .enumerate()
        .filter(|&(_, &b)| b)
        .map(|(i, _)| var_name(i))
        .collect();
    if !binaries.is_empty() {
        out.push_str("Binary\n ");
        out.push_str(&binaries.join(" "));
        out.push('\n');
    }
    out.push_str("End\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LinExpr;

    #[test]
    fn format_covers_all_sections() {
        let mut p = LpProblem::new();
        let x = p.add_var(0.0, 2.0);
        let y = p.add_free_var();
        let b = p.add_binary_var();
        p.add_constraint(
            LinExpr::new().term(1.0, x).term(-2.0, y).term(1.0, b),
            Sense::Ge,
            -1.0,
        );
        p.add_constraint(LinExpr::new().term(1.0, y), Sense::Eq, 0.5);
        p.set_objective(Direction::Minimize, LinExpr::new().term(3.0, x));
        let text = to_lp_format(&p);
        assert!(text.starts_with("Minimize"));
        assert!(text.contains("c0: 1 x0 - 2 x1 + 1 x2 >= -1"));
        assert!(text.contains("c1: 1 x1 = 0.5"));
        assert!(text.contains("0 <= x0 <= 2"));
        assert!(text.contains("x1 free"));
        assert!(text.contains("Binary\n x2"));
        assert!(text.ends_with("End\n"));
    }

    #[test]
    fn empty_objective_renders_zero() {
        let mut p = LpProblem::new();
        let _ = p.add_var(0.0, 1.0);
        let text = to_lp_format(&p);
        assert!(text.contains("obj: 0"));
    }
}
