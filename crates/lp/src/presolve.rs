//! LP presolve: cheap, soundness-preserving problem reductions applied
//! before the simplex.
//!
//! Three classic reductions, iterated for a few rounds:
//!
//! 1. **Singleton rows** `c·x ⋛ b` are converted into variable bounds and
//!    dropped.
//! 2. **Redundant rows** whose activity range (computed from the variable
//!    bounds) already implies the constraint are dropped.
//! 3. **Bound propagation**: for every row and variable, the row's residual
//!    activity tightens the variable's bounds.
//!
//! Presolve preserves the feasible set exactly (it only removes implied
//! rows and tightens bounds to implied values), so optimal values and
//! optimal solutions are unchanged. Infeasibility can be detected outright,
//! which matters inside branch & bound where fixing a binary variable often
//! makes a node's subproblem trivially empty.

use crate::model::Row;
use crate::{LpProblem, Sense};

/// Outcome of a presolve pass.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PresolveReport {
    /// Rows removed (singleton or redundant).
    pub removed_rows: usize,
    /// Variable-bound tightenings applied.
    pub tightened_bounds: usize,
    /// Whether presolve proved the problem infeasible.
    pub infeasible: bool,
    /// Original index of each surviving row, in order: `kept_rows[i]` is
    /// where presolved row `i` sat in the input problem. Lets callers map
    /// duals of the reduced problem back onto the original row set.
    /// Unspecified when `infeasible`.
    pub kept_rows: Vec<usize>,
    /// Singleton rows that were converted into variable bounds, with
    /// enough context to reconstruct their duals from reduced costs.
    pub dropped_singletons: Vec<DroppedSingleton>,
}

/// A singleton row `coef · var ⋛ rhs` that presolve folded into `var`'s
/// bounds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DroppedSingleton {
    /// Original row index.
    pub row: usize,
    /// Index of the row's single variable.
    pub var: usize,
    /// The variable's coefficient (nonzero).
    pub coef: f64,
    /// The row's sense.
    pub sense: Sense,
    /// The row's right-hand side.
    pub rhs: f64,
}

/// Activity range of a row over the current variable bounds.
fn activity(row: &Row, bounds: &[(f64, f64)]) -> (f64, f64) {
    let mut lo = 0.0;
    let mut hi = 0.0;
    for &(v, c) in row.expr.terms() {
        let (blo, bhi) = bounds[v.index()];
        if c >= 0.0 {
            lo += c * blo;
            hi += c * bhi;
        } else {
            lo += c * bhi;
            hi += c * blo;
        }
    }
    (lo, hi)
}

/// Tightens `var`'s bounds to `[lo, hi]` (intersection), counting changes.
/// Returns `false` when the domain becomes empty beyond tolerance.
fn tighten(
    bounds: &mut [(f64, f64)],
    var: usize,
    lo: f64,
    hi: f64,
    tol: f64,
    report: &mut PresolveReport,
) -> bool {
    let (cur_lo, cur_hi) = bounds[var];
    let new_lo = cur_lo.max(lo);
    let new_hi = cur_hi.min(hi);
    if new_lo > new_hi + tol {
        report.infeasible = true;
        return false;
    }
    // Only count meaningful tightenings to keep the fixpoint loop finite.
    let significant = new_lo > cur_lo + tol || new_hi < cur_hi - tol;
    if significant {
        report.tightened_bounds += 1;
        bounds[var] = (new_lo, new_hi.max(new_lo));
    }
    significant
}

/// Runs presolve in place for at most `rounds` fixpoint rounds, using the
/// caller's feasibility tolerance `tol` (pass `SimplexOptions::tol` so
/// presolve never declares infeasible what the simplex would accept).
///
/// Integer markers and the objective are untouched; only rows and bounds
/// change. The variable set (and therefore solution indexing) is preserved;
/// [`PresolveReport::kept_rows`] records where each surviving row came
/// from.
pub fn presolve(problem: &mut LpProblem, rounds: usize, tol: f64) -> PresolveReport {
    let mut report = PresolveReport::default();
    // Original index of each current row, maintained across rounds.
    let mut origin: Vec<usize> = (0..problem.rows.len()).collect();
    for _ in 0..rounds {
        let mut changed = false;
        let mut keep: Vec<Row> = Vec::with_capacity(problem.rows.len());
        let mut keep_origin: Vec<usize> = Vec::with_capacity(origin.len());
        let rows = std::mem::take(&mut problem.rows);
        for (row, orig) in rows.into_iter().zip(origin.iter().copied()) {
            let terms = row.expr.terms();
            // 1. Singleton row → variable bound.
            if terms.len() == 1 {
                let (v, c) = terms[0];
                if c.abs() > tol {
                    let target = row.rhs / c;
                    let (lo, hi) = match (row.sense, c > 0.0) {
                        (Sense::Le, true) | (Sense::Ge, false) => (f64::NEG_INFINITY, target),
                        (Sense::Ge, true) | (Sense::Le, false) => (target, f64::INFINITY),
                        (Sense::Eq, _) => (target, target),
                    };
                    tighten(&mut problem.bounds, v.index(), lo, hi, tol, &mut report);
                    report.dropped_singletons.push(DroppedSingleton {
                        row: orig,
                        var: v.index(),
                        coef: c,
                        sense: row.sense,
                        rhs: row.rhs,
                    });
                    report.removed_rows += 1;
                    changed = true;
                    if report.infeasible {
                        problem.rows = keep;
                        return report;
                    }
                    continue;
                }
                // Zero-coefficient singleton: constant row.
                let ok = match row.sense {
                    Sense::Le => 0.0 <= row.rhs + tol,
                    Sense::Ge => 0.0 >= row.rhs - tol,
                    Sense::Eq => row.rhs.abs() <= tol,
                };
                if !ok {
                    report.infeasible = true;
                    problem.rows = keep;
                    return report;
                }
                report.removed_rows += 1;
                changed = true;
                continue;
            }
            let (act_lo, act_hi) = activity(&row, &problem.bounds);
            // 2. Redundant / infeasible rows.
            let (redundant, impossible) = match row.sense {
                Sense::Le => (act_hi <= row.rhs + tol, act_lo > row.rhs + tol),
                Sense::Ge => (act_lo >= row.rhs - tol, act_hi < row.rhs - tol),
                Sense::Eq => (
                    (act_lo - row.rhs).abs() <= tol && (act_hi - row.rhs).abs() <= tol,
                    act_lo > row.rhs + tol || act_hi < row.rhs - tol,
                ),
            };
            if impossible {
                report.infeasible = true;
                problem.rows = keep;
                return report;
            }
            if redundant {
                report.removed_rows += 1;
                changed = true;
                continue;
            }
            // 3. Bound propagation (≤-style and ≥-style sides).
            if act_lo.is_finite() || act_hi.is_finite() {
                for &(v, c) in row.expr.terms() {
                    if c.abs() <= tol {
                        continue;
                    }
                    let (blo, bhi) = problem.bounds[v.index()];
                    // Residual activity of the other terms.
                    let (other_lo, other_hi) = {
                        let (mut lo, mut hi) = (act_lo, act_hi);
                        if c >= 0.0 {
                            lo -= c * blo;
                            hi -= c * bhi;
                        } else {
                            lo -= c * bhi;
                            hi -= c * blo;
                        }
                        (lo, hi)
                    };
                    let mut new_lo = f64::NEG_INFINITY;
                    let mut new_hi = f64::INFINITY;
                    if matches!(row.sense, Sense::Le | Sense::Eq) && other_lo.is_finite() {
                        // c·x ≤ rhs − other_lo.
                        let limit = (row.rhs - other_lo) / c;
                        if c > 0.0 {
                            new_hi = new_hi.min(limit);
                        } else {
                            new_lo = new_lo.max(limit);
                        }
                    }
                    if matches!(row.sense, Sense::Ge | Sense::Eq) && other_hi.is_finite() {
                        // c·x ≥ rhs − other_hi.
                        let limit = (row.rhs - other_hi) / c;
                        if c > 0.0 {
                            new_lo = new_lo.max(limit);
                        } else {
                            new_hi = new_hi.min(limit);
                        }
                    }
                    if tighten(
                        &mut problem.bounds,
                        v.index(),
                        new_lo,
                        new_hi,
                        tol,
                        &mut report,
                    ) {
                        changed = true;
                    }
                    if report.infeasible {
                        // Keep remaining rows for debuggability and stop.
                        keep.push(row.clone());
                        problem.rows = keep;
                        return report;
                    }
                }
            }
            keep.push(row);
            keep_origin.push(orig);
        }
        problem.rows = keep;
        origin = keep_origin;
        if !changed {
            break;
        }
    }
    report.kept_rows = origin;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Direction, LinExpr, LpProblem, Sense, SolveStatus};

    #[test]
    fn singleton_rows_become_bounds() {
        let mut p = LpProblem::new();
        let x = p.add_var(0.0, 10.0);
        p.add_constraint(LinExpr::new().term(2.0, x), Sense::Le, 4.0);
        p.add_constraint(LinExpr::new().term(1.0, x), Sense::Ge, 1.0);
        let report = presolve(&mut p, 3, 1e-7);
        assert_eq!(report.removed_rows, 2);
        assert_eq!(p.num_constraints(), 0);
        assert_eq!(p.bounds[0], (1.0, 2.0));
    }

    #[test]
    fn redundant_rows_are_removed() {
        let mut p = LpProblem::new();
        let x = p.add_var(0.0, 1.0);
        let y = p.add_var(0.0, 1.0);
        // x + y ≤ 5 is implied by the bounds.
        p.add_constraint(LinExpr::new().term(1.0, x).term(1.0, y), Sense::Le, 5.0);
        let report = presolve(&mut p, 3, 1e-7);
        assert_eq!(report.removed_rows, 1);
        assert_eq!(p.num_constraints(), 0);
        assert!(!report.infeasible);
    }

    #[test]
    fn bound_propagation_tightens() {
        let mut p = LpProblem::new();
        let x = p.add_var(0.0, 10.0);
        let y = p.add_var(0.0, 10.0);
        // x + y ≤ 3 → both x, y ≤ 3.
        p.add_constraint(LinExpr::new().term(1.0, x).term(1.0, y), Sense::Le, 3.0);
        let report = presolve(&mut p, 3, 1e-7);
        assert!(report.tightened_bounds >= 2);
        assert!(p.bounds[0].1 <= 3.0 + 1e-9);
        assert!(p.bounds[1].1 <= 3.0 + 1e-9);
    }

    #[test]
    fn detects_infeasibility_from_bounds() {
        let mut p = LpProblem::new();
        let x = p.add_var(0.0, 1.0);
        p.add_constraint(LinExpr::new().term(1.0, x), Sense::Ge, 2.0);
        let report = presolve(&mut p, 3, 1e-7);
        assert!(report.infeasible);
    }

    #[test]
    fn detects_infeasibility_from_activity() {
        let mut p = LpProblem::new();
        let x = p.add_var(0.0, 1.0);
        let y = p.add_var(0.0, 1.0);
        p.add_constraint(LinExpr::new().term(1.0, x).term(1.0, y), Sense::Ge, 3.0);
        let report = presolve(&mut p, 3, 1e-7);
        assert!(report.infeasible);
    }

    #[test]
    fn presolve_preserves_the_optimum() {
        // A problem mixing all reduction opportunities.
        let mut p = LpProblem::new();
        let x = p.add_var(0.0, 10.0);
        let y = p.add_var(0.0, 10.0);
        let z = p.add_var(-5.0, 5.0);
        p.add_constraint(LinExpr::new().term(1.0, x), Sense::Le, 4.0); // singleton
        p.add_constraint(
            LinExpr::new().term(1.0, x).term(1.0, y).term(1.0, z),
            Sense::Le,
            100.0,
        ); // redundant
        p.add_constraint(LinExpr::new().term(1.0, x).term(2.0, y), Sense::Le, 8.0);
        p.add_constraint(LinExpr::new().term(1.0, y).term(-1.0, z), Sense::Ge, 0.0);
        p.set_objective(
            Direction::Maximize,
            LinExpr::new().term(3.0, x).term(2.0, y).term(1.0, z),
        );
        let baseline = p.solve().expect("solves").objective;
        let mut q = p.clone();
        let report = presolve(&mut q, 4, 1e-7);
        assert!(!report.infeasible);
        let presolved = q.solve().expect("solves");
        assert_eq!(presolved.status, SolveStatus::Optimal);
        assert!(
            (presolved.objective - baseline).abs() < 1e-6,
            "presolve changed optimum: {} vs {baseline}",
            presolved.objective
        );
        // The presolved solution is feasible for the original problem.
        assert!(p.is_feasible(&presolved.values, 1e-6));
    }

    #[test]
    fn kept_rows_map_back_to_original_indices() {
        let mut p = LpProblem::new();
        let x = p.add_var(0.0, 10.0);
        let y = p.add_var(0.0, 10.0);
        p.add_constraint(LinExpr::new().term(1.0, x), Sense::Le, 4.0); // singleton (dropped)
        p.add_constraint(LinExpr::new().term(1.0, x).term(2.0, y), Sense::Le, 8.0); // kept
        p.add_constraint(LinExpr::new().term(1.0, x).term(1.0, y), Sense::Le, 500.0); // redundant
        p.add_constraint(LinExpr::new().term(2.0, x).term(-1.0, y), Sense::Ge, -2.0); // kept
        let report = presolve(&mut p, 3, 1e-7);
        assert!(!report.infeasible);
        assert_eq!(report.kept_rows.len(), p.num_constraints());
        assert_eq!(report.kept_rows, vec![1, 3]);
        assert_eq!(report.dropped_singletons.len(), 1);
        let ds = &report.dropped_singletons[0];
        assert_eq!((ds.row, ds.var), (0, 0));
        assert_eq!((ds.coef, ds.rhs), (1.0, 4.0));
        assert_eq!(ds.sense, Sense::Le);
    }

    #[test]
    fn caller_tolerance_is_honoured() {
        // A 5e-8 violation is within the simplex's 1e-7 tolerance: presolve
        // run at that tolerance must not declare infeasibility (it used to,
        // with its own hard-coded 1e-9).
        let mut p = LpProblem::new();
        let x = p.add_var(0.0, 1.0);
        p.add_constraint(LinExpr::new().term(1.0, x), Sense::Ge, 1.0 + 5e-8);
        let lenient = presolve(&mut p.clone(), 3, 1e-7);
        assert!(!lenient.infeasible);
        let strict = presolve(&mut p, 3, 1e-9);
        assert!(strict.infeasible);
    }

    #[test]
    fn equality_rows_propagate_both_sides() {
        let mut p = LpProblem::new();
        let x = p.add_var(0.0, 10.0);
        let y = p.add_var(2.0, 3.0);
        p.add_constraint(LinExpr::new().term(1.0, x).term(1.0, y), Sense::Eq, 5.0);
        presolve(&mut p, 3, 1e-7);
        // x = 5 − y ∈ [2, 3].
        assert!(p.bounds[0].0 >= 2.0 - 1e-9);
        assert!(p.bounds[0].1 <= 3.0 + 1e-9);
    }
}
