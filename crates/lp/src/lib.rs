//! Linear and mixed-integer linear programming for the RaVeN verifier.
//!
//! The original RaVeN implementation delegates its relational LP/MILP
//! formulations to Gurobi; this crate is the from-scratch substitution: a
//! bounded-variable two-phase primal simplex ([`LpProblem::solve`]) and a
//! branch-and-bound wrapper for the handful of binary specification
//! variables the encodings introduce ([`LpProblem::solve_milp`]).
//!
//! # Examples
//!
//! ```
//! use raven_lp::{Direction, LinExpr, LpProblem, Sense};
//!
//! let mut p = LpProblem::new();
//! let x = p.add_var(0.0, 2.0);
//! let y = p.add_var(0.0, 2.0);
//! p.add_constraint(LinExpr::new().term(1.0, x).term(1.0, y), Sense::Le, 3.0);
//! p.set_objective(Direction::Maximize, LinExpr::new().term(2.0, x).term(1.0, y));
//! let sol = p.solve()?;
//! assert!((sol.objective - 5.0).abs() < 1e-7);
//! # Ok::<(), raven_lp::LpError>(())
//! ```

mod budget;
mod certificate;
pub mod chaos;
mod error;
pub mod metrics;
mod milp;
mod model;
mod presolve;
mod simplex;
mod write;

pub use budget::Budget;
pub use error::LpError;
pub use milp::MilpOptions;
pub use model::{Direction, LinExpr, LpProblem, Sense, Solution, SolveStatus, VarId};
pub use presolve::{presolve, DroppedSingleton, PresolveReport};
pub use simplex::{BasisCache, SimplexOptions};
pub use write::to_lp_format;
