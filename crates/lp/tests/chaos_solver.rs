//! Chaos tests for the LP/MILP solvers that arm process-global fault
//! injection. They live in their own integration binary (own process) so
//! the armed faults cannot leak into the library's parallel unit tests,
//! and serialize themselves behind a mutex within this binary.

use raven_lp::{chaos, Budget, Direction, LinExpr, LpProblem, MilpOptions, Sense, SolveStatus};
use std::sync::Mutex;
use std::time::{Duration, Instant};

static CHAOS_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` with exclusive ownership of the chaos state, clearing it on
/// the way in and out (even when the closure panics).
fn with_chaos<T>(f: impl FnOnce() -> T) -> T {
    let _guard = CHAOS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    chaos::clear();
    let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
    chaos::clear();
    match out {
        Ok(v) => v,
        Err(p) => std::panic::resume_unwind(p),
    }
}

/// Knapsack-style MILP whose root relaxation is fractional, so branch &
/// bound must explore children: max 5x + 4y + 3z st 2x + 3y + z ≤ 5,
/// binaries. Exact optimum: x = y = 1, z = 0 → 9.
fn knapsack() -> LpProblem {
    let mut p = LpProblem::new();
    let x = p.add_binary_var();
    let y = p.add_binary_var();
    let z = p.add_binary_var();
    p.add_constraint(
        LinExpr::new().term(2.0, x).term(3.0, y).term(1.0, z),
        Sense::Le,
        5.0,
    );
    p.set_objective(
        Direction::Maximize,
        LinExpr::new().term(5.0, x).term(4.0, y).term(3.0, z),
    );
    p
}

#[test]
fn forced_unbounded_child_relaxation_propagates_unbounded() {
    // Regression for an unsound prune: branch & bound used to treat an
    // Unbounded *child* relaxation as an infeasible subtree and discard
    // it. A child's recession cone is contained in its ancestors', so an
    // unbounded child proves the whole MILP unbounded (any feasible point
    // of the child rides the ray). Real children can't go unbounded under
    // bounds-only branching, hence the injected fault.
    for warm_start in [true, false] {
        with_chaos(|| {
            let p = knapsack();
            let opts = MilpOptions {
                warm_start,
                ..MilpOptions::default()
            };
            // Skip the root solve so the fault fires on a child node.
            chaos::set_force_unbounded_after(1);
            let sol = p.solve_milp_with(&opts).expect("milp completes");
            assert_eq!(
                sol.status,
                SolveStatus::Unbounded,
                "unbounded child (warm_start={warm_start}) must propagate, not be pruned"
            );
        });
    }
}

#[test]
fn forced_unbounded_root_relaxation_propagates_unbounded() {
    with_chaos(|| {
        let p = knapsack();
        chaos::set_force_unbounded_after(0);
        let sol = p.solve_milp().expect("milp completes");
        assert_eq!(sol.status, SolveStatus::Unbounded);
    });
}

#[test]
fn budget_expiry_mid_dual_pivot_yields_sound_anytime_bound() {
    with_chaos(|| {
        let p = knapsack();
        let exact = p.solve_milp().expect("milp solves");
        assert_eq!(exact.status, SolveStatus::Optimal);
        assert!((exact.objective - 9.0).abs() < 1e-9);

        // Stall every pivot (primal and dual alike) and give the solve a
        // deadline that expires while child nodes are being warm-started:
        // the budget check at the top of the dual pivot loop must fire.
        chaos::set_pivot_stall_micros(20_000);
        let budget = Budget::default().with_deadline(Instant::now() + Duration::from_millis(60));
        let sol = p
            .solve_milp_with_budget(&MilpOptions::default(), &budget)
            .expect("budget expiry is an anytime result, not an error");
        match sol.status {
            SolveStatus::BudgetExceeded { best_bound } => {
                // Soundness: the reported dual bound may never understate
                // the true optimum for a maximization.
                assert!(
                    best_bound >= exact.objective - 1e-9,
                    "anytime bound {best_bound} understates optimum {}",
                    exact.objective
                );
            }
            SolveStatus::Optimal => {
                // Machine was fast enough to finish despite the stall;
                // the answer must then be the exact one.
                assert!((sol.objective - exact.objective).abs() < 1e-9);
            }
            other => panic!("unexpected status {other:?}"),
        }
    });
}
