//! Property-based tests of the simplex solver: on randomly generated LPs
//! the solver's answer must be feasible and at least as good as any sampled
//! feasible point, and structural invariants (duality-style sandwiches,
//! monotonicity under constraint addition) must hold.

use proptest::prelude::*;
use raven_lp::{Direction, LinExpr, LpProblem, Sense, SolveStatus};

#[derive(Debug, Clone)]
struct RandomLp {
    bounds: Vec<(f64, f64)>,
    rows: Vec<(Vec<f64>, f64)>, // a·x ≤ rhs
    objective: Vec<f64>,
}

fn random_lp() -> impl Strategy<Value = RandomLp> {
    (2usize..6, 1usize..8).prop_flat_map(|(n, m)| {
        let bounds = proptest::collection::vec((-5.0f64..0.0, 0.0f64..5.0), n);
        let rows = proptest::collection::vec(
            (proptest::collection::vec(-3.0f64..3.0, n), 0.5f64..10.0),
            m,
        );
        let objective = proptest::collection::vec(-2.0f64..2.0, n);
        let _ = n;
        (bounds, rows, objective).prop_map(|(bounds, rows, objective)| RandomLp {
            bounds,
            rows,
            objective,
        })
    })
}

fn build(lp: &RandomLp) -> (LpProblem, Vec<raven_lp::VarId>) {
    let mut p = LpProblem::new();
    let vars: Vec<_> = lp.bounds.iter().map(|&(lo, hi)| p.add_var(lo, hi)).collect();
    for (coeffs, rhs) in &lp.rows {
        let row: LinExpr = vars
            .iter()
            .zip(coeffs)
            .map(|(&v, &c)| (v, c))
            .collect();
        // rhs > 0 and x = 0 is inside every box, so 0 is always feasible:
        // the LP can never be infeasible and never unbounded (boxed vars).
        p.add_constraint(row, Sense::Le, *rhs);
    }
    let obj: LinExpr = vars
        .iter()
        .zip(&lp.objective)
        .map(|(&v, &c)| (v, c))
        .collect();
    p.set_objective(Direction::Maximize, obj);
    (p, vars)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn optimal_solutions_are_feasible_and_dominant(lp in random_lp(), samples in proptest::collection::vec(proptest::collection::vec(0.0f64..1.0, 2..6), 8)) {
        let (p, _) = build(&lp);
        let sol = p.solve().expect("solve succeeds");
        prop_assert_eq!(sol.status, SolveStatus::Optimal);
        prop_assert!(p.is_feasible(&sol.values, 1e-5), "returned point infeasible");
        // No sampled feasible point may beat the reported optimum.
        for s in &samples {
            let x: Vec<f64> = lp
                .bounds
                .iter()
                .enumerate()
                .map(|(i, &(lo, hi))| lo + (hi - lo) * s[i % s.len()])
                .collect();
            if p.is_feasible(&x, 1e-9) {
                let val: f64 = x.iter().zip(&lp.objective).map(|(a, b)| a * b).sum();
                prop_assert!(val <= sol.objective + 1e-5,
                    "sampled feasible point {val} beats optimum {}", sol.objective);
            }
        }
    }

    #[test]
    fn adding_constraints_never_improves_the_optimum(lp in random_lp()) {
        let (p, vars) = build(&lp);
        let base = p.solve().expect("solve succeeds").objective;
        let mut tightened = p.clone();
        let cut: LinExpr = vars.iter().map(|&v| (v, 1.0)).collect();
        tightened.add_constraint(cut, Sense::Le, 1.0);
        let t = tightened.solve().expect("solve succeeds");
        if t.status == SolveStatus::Optimal {
            prop_assert!(t.objective <= base + 1e-6,
                "tightened {} > base {base}", t.objective);
        }
    }

    #[test]
    fn minimize_is_negated_maximize(lp in random_lp()) {
        let (p, vars) = build(&lp);
        let max = p.solve().expect("solve succeeds").objective;
        let mut q = p.clone();
        let neg_obj: LinExpr = vars
            .iter()
            .zip(&lp.objective)
            .map(|(&v, &c)| (v, -c))
            .collect();
        q.set_objective(Direction::Minimize, neg_obj);
        let min = q.solve().expect("solve succeeds").objective;
        prop_assert!((max + min).abs() < 1e-5, "max {max} vs min {min}");
    }

    #[test]
    fn presolve_preserves_the_optimum(lp in random_lp()) {
        let (p, _) = build(&lp);
        let baseline = p.solve().expect("solves").objective;
        let mut q = p.clone();
        let report = raven_lp::presolve(&mut q, 4);
        prop_assert!(!report.infeasible, "feasible LP declared infeasible");
        let presolved = q.solve().expect("solves");
        prop_assert_eq!(presolved.status, SolveStatus::Optimal);
        prop_assert!(
            (presolved.objective - baseline).abs() < 1e-5,
            "presolve changed optimum: {} vs {baseline}", presolved.objective
        );
        // The presolved solution remains feasible for the original problem.
        prop_assert!(p.is_feasible(&presolved.values, 1e-5));
    }

    #[test]
    fn milp_bound_is_within_lp_relaxation(coeffs in proptest::collection::vec(0.5f64..3.0, 3..7), cap in 2.0f64..6.0) {
        // Knapsack-style: max Σ x_i st Σ c_i x_i ≤ cap, binaries.
        let mut p = LpProblem::new();
        let vars: Vec<_> = coeffs.iter().map(|_| p.add_binary_var()).collect();
        let row: LinExpr = vars.iter().zip(&coeffs).map(|(&v, &c)| (v, c)).collect();
        p.add_constraint(row, Sense::Le, cap);
        let obj: LinExpr = vars.iter().map(|&v| (v, 1.0)).collect();
        p.set_objective(Direction::Maximize, obj);
        let relax = p.solve().expect("lp solves").objective;
        let exact = p.solve_milp().expect("milp solves");
        prop_assert!(exact.status == SolveStatus::Optimal);
        prop_assert!(exact.objective <= relax + 1e-6);
        // The incumbent is integral and feasible.
        for &v in &exact.values {
            prop_assert!((v - v.round()).abs() < 1e-6);
        }
        prop_assert!(p.is_feasible(&exact.values, 1e-6));
    }
}
