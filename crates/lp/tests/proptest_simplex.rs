//! Randomized tests of the simplex solver: on randomly generated LPs the
//! solver's answer must be feasible and at least as good as any sampled
//! feasible point, and structural invariants (duality-style sandwiches,
//! monotonicity under constraint addition) must hold.
//!
//! Driven by the workspace's deterministic [`Rng`] so the suite builds
//! offline and replays identically on every run.

use raven_lp::{Direction, LinExpr, LpProblem, MilpOptions, Sense, SolveStatus};
use raven_tensor::Rng;

const CASES: usize = 64;

#[derive(Debug, Clone)]
struct RandomLp {
    bounds: Vec<(f64, f64)>,
    rows: Vec<(Vec<f64>, f64)>, // a·x ≤ rhs
    objective: Vec<f64>,
}

fn random_lp(rng: &mut Rng) -> RandomLp {
    let n = 2 + rng.below(4);
    let m = 1 + rng.below(7);
    let bounds: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.in_range(-5.0, 0.0), rng.in_range(0.0, 5.0)))
        .collect();
    let rows: Vec<(Vec<f64>, f64)> = (0..m)
        .map(|_| {
            let coeffs: Vec<f64> = (0..n).map(|_| rng.in_range(-3.0, 3.0)).collect();
            (coeffs, rng.in_range(0.5, 10.0))
        })
        .collect();
    let objective: Vec<f64> = (0..n).map(|_| rng.in_range(-2.0, 2.0)).collect();
    RandomLp {
        bounds,
        rows,
        objective,
    }
}

fn build(lp: &RandomLp) -> (LpProblem, Vec<raven_lp::VarId>) {
    let mut p = LpProblem::new();
    let vars: Vec<_> = lp
        .bounds
        .iter()
        .map(|&(lo, hi)| p.add_var(lo, hi))
        .collect();
    for (coeffs, rhs) in &lp.rows {
        let row: LinExpr = vars.iter().zip(coeffs).map(|(&v, &c)| (v, c)).collect();
        // rhs > 0 and x = 0 is inside every box, so 0 is always feasible:
        // the LP can never be infeasible and never unbounded (boxed vars).
        p.add_constraint(row, Sense::Le, *rhs);
    }
    let obj: LinExpr = vars
        .iter()
        .zip(&lp.objective)
        .map(|(&v, &c)| (v, c))
        .collect();
    p.set_objective(Direction::Maximize, obj);
    (p, vars)
}

#[test]
fn optimal_solutions_are_feasible_and_dominant() {
    let mut rng = Rng::new(0x19_00);
    for _ in 0..CASES {
        let lp = random_lp(&mut rng);
        let (p, _) = build(&lp);
        let sol = p.solve().expect("solve succeeds");
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert!(
            p.is_feasible(&sol.values, 1e-5),
            "returned point infeasible"
        );
        // No sampled feasible point may beat the reported optimum.
        for _ in 0..8 {
            let x: Vec<f64> = lp
                .bounds
                .iter()
                .map(|&(lo, hi)| lo + (hi - lo) * rng.uniform())
                .collect();
            if p.is_feasible(&x, 1e-9) {
                let val: f64 = x.iter().zip(&lp.objective).map(|(a, b)| a * b).sum();
                assert!(
                    val <= sol.objective + 1e-5,
                    "sampled feasible point {val} beats optimum {}",
                    sol.objective
                );
            }
        }
    }
}

#[test]
fn adding_constraints_never_improves_the_optimum() {
    let mut rng = Rng::new(0x19_01);
    for _ in 0..CASES {
        let lp = random_lp(&mut rng);
        let (p, vars) = build(&lp);
        let base = p.solve().expect("solve succeeds").objective;
        let mut tightened = p.clone();
        let cut: LinExpr = vars.iter().map(|&v| (v, 1.0)).collect();
        tightened.add_constraint(cut, Sense::Le, 1.0);
        let t = tightened.solve().expect("solve succeeds");
        if t.status == SolveStatus::Optimal {
            assert!(
                t.objective <= base + 1e-6,
                "tightened {} > base {base}",
                t.objective
            );
        }
    }
}

#[test]
fn minimize_is_negated_maximize() {
    let mut rng = Rng::new(0x19_02);
    for _ in 0..CASES {
        let lp = random_lp(&mut rng);
        let (p, vars) = build(&lp);
        let max = p.solve().expect("solve succeeds").objective;
        let mut q = p.clone();
        let neg_obj: LinExpr = vars
            .iter()
            .zip(&lp.objective)
            .map(|(&v, &c)| (v, -c))
            .collect();
        q.set_objective(Direction::Minimize, neg_obj);
        let min = q.solve().expect("solve succeeds").objective;
        assert!((max + min).abs() < 1e-5, "max {max} vs min {min}");
    }
}

#[test]
fn presolve_preserves_the_optimum() {
    let mut rng = Rng::new(0x19_03);
    for _ in 0..CASES {
        let lp = random_lp(&mut rng);
        let (p, _) = build(&lp);
        let baseline = p.solve().expect("solves").objective;
        let mut q = p.clone();
        let report = raven_lp::presolve(&mut q, 4, 1e-7);
        assert!(!report.infeasible, "feasible LP declared infeasible");
        let presolved = q.solve().expect("solves");
        assert_eq!(presolved.status, SolveStatus::Optimal);
        assert!(
            (presolved.objective - baseline).abs() < 1e-5,
            "presolve changed optimum: {} vs {baseline}",
            presolved.objective
        );
        // The presolved solution remains feasible for the original problem.
        assert!(p.is_feasible(&presolved.values, 1e-5));
    }
}

#[test]
fn milp_bound_is_within_lp_relaxation() {
    // Knapsack-style: max Σ x_i st Σ c_i x_i ≤ cap, binaries.
    let mut rng = Rng::new(0x19_04);
    for _ in 0..CASES {
        let n = 3 + rng.below(4);
        let coeffs: Vec<f64> = (0..n).map(|_| rng.in_range(0.5, 3.0)).collect();
        let cap = rng.in_range(2.0, 6.0);
        let mut p = LpProblem::new();
        let vars: Vec<_> = coeffs.iter().map(|_| p.add_binary_var()).collect();
        let row: LinExpr = vars.iter().zip(&coeffs).map(|(&v, &c)| (v, c)).collect();
        p.add_constraint(row, Sense::Le, cap);
        let obj: LinExpr = vars.iter().map(|&v| (v, 1.0)).collect();
        p.set_objective(Direction::Maximize, obj);
        let relax = p.solve().expect("lp solves").objective;
        let exact = p.solve_milp().expect("milp solves");
        assert!(exact.status == SolveStatus::Optimal);
        assert!(exact.objective <= relax + 1e-6);
        // The incumbent is integral and feasible.
        for &v in &exact.values {
            assert!((v - v.round()).abs() < 1e-6);
        }
        assert!(p.is_feasible(&exact.values, 1e-6));
    }
}

#[test]
fn warm_started_milp_matches_cold_start() {
    // Warm starts are a pure accelerator: across random knapsack-style
    // MILPs, branch & bound with parent-basis dual-simplex warm starts
    // must report exactly the same status and objective as cold starts,
    // and its incumbent must be an integral feasible point.
    let mut rng = Rng::new(0x19_05);
    let warm = MilpOptions::default();
    let cold = MilpOptions {
        warm_start: false,
        ..MilpOptions::default()
    };
    assert!(warm.warm_start, "warm starts are the default");
    for _ in 0..CASES {
        let n = 3 + rng.below(5);
        let mut p = LpProblem::new();
        let vars: Vec<_> = (0..n).map(|_| p.add_binary_var()).collect();
        let values: Vec<f64> = (0..n).map(|_| rng.in_range(0.5, 4.0)).collect();
        for _ in 0..(1 + rng.below(3)) {
            let coeffs: Vec<f64> = (0..n).map(|_| rng.in_range(0.2, 3.0)).collect();
            let cap = rng.in_range(1.5, 6.0);
            let row: LinExpr = vars.iter().zip(&coeffs).map(|(&v, &c)| (v, c)).collect();
            p.add_constraint(row, Sense::Le, cap);
        }
        let obj: LinExpr = vars.iter().zip(&values).map(|(&v, &c)| (v, c)).collect();
        p.set_objective(Direction::Maximize, obj);

        let w = p.solve_milp_with(&warm).expect("warm milp solves");
        let c = p.solve_milp_with(&cold).expect("cold milp solves");
        assert_eq!(w.status, c.status);
        assert_eq!(w.status, SolveStatus::Optimal);
        assert!(
            (w.objective - c.objective).abs() < 1e-6,
            "warm {} vs cold {}",
            w.objective,
            c.objective
        );
        for &v in &w.values {
            assert!((v - v.round()).abs() < 1e-6, "non-integral incumbent {v}");
        }
        assert!(p.is_feasible(&w.values, 1e-6));
    }
}
