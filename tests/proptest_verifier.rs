//! Property-based end-to-end tests of the verifier: on randomized networks
//! and batches, the method hierarchy, the certificate/attack sandwich, and
//! the encoder's admission of concrete executions must all hold.

use proptest::prelude::*;
use raven::{verify_uap, Method, PairStrategy, RavenConfig, UapProblem};
use raven_nn::{ActKind, NetworkBuilder};

fn act() -> impl Strategy<Value = ActKind> {
    prop_oneof![
        Just(ActKind::Relu),
        Just(ActKind::Sigmoid),
        Just(ActKind::Tanh),
        Just(ActKind::LeakyRelu),
        Just(ActKind::HardTanh),
    ]
}

#[derive(Debug, Clone)]
struct Instance {
    net: raven_nn::Network,
    inputs: Vec<Vec<f64>>,
    eps: f64,
}

fn instance() -> impl Strategy<Value = Instance> {
    (
        0u64..500,
        act(),
        2usize..4,
        0.005f64..0.12,
        proptest::collection::vec(proptest::collection::vec(0.2f64..0.8, 4), 2..4),
    )
        .prop_map(|(seed, kind, hidden, eps, inputs)| {
            let net = NetworkBuilder::new(4)
                .dense(hidden + 3, seed)
                .activation(kind)
                .dense(hidden + 2, seed + 1)
                .activation(kind)
                .dense(3, seed + 2)
                .build();
            Instance { net, inputs, eps }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn uap_method_hierarchy(inst in instance()) {
        let labels: Vec<usize> = inst.inputs.iter().map(|x| inst.net.classify(x)).collect();
        let problem = UapProblem {
            plan: inst.net.to_plan(),
            inputs: inst.inputs.clone(),
            labels,
            eps: inst.eps,
        };
        let config = RavenConfig::default();
        let acc = |m| verify_uap(&problem, m, &config).worst_case_accuracy;
        let bx = acc(Method::Box);
        let zn = acc(Method::ZonotopeIndividual);
        let dp = acc(Method::DeepPolyIndividual);
        let io = acc(Method::IoLp);
        let rv = acc(Method::Raven);
        prop_assert!(bx <= zn + 1e-7, "box {bx} > zonotope {zn}");
        prop_assert!(bx <= dp + 1e-7, "box {bx} > deeppoly {dp}");
        prop_assert!(dp <= io + 1e-7, "deeppoly {dp} > io-lp {io}");
        prop_assert!(io <= rv + 1e-7, "io-lp {io} > raven {rv}");
    }

    #[test]
    fn certificate_never_exceeds_point_evaluation(inst in instance()) {
        // The zero perturbation keeps every input at its clean prediction,
        // so the worst case can never beat the clean accuracy (which is 1
        // by construction of the labels).
        let labels: Vec<usize> = inst.inputs.iter().map(|x| inst.net.classify(x)).collect();
        let problem = UapProblem {
            plan: inst.net.to_plan(),
            inputs: inst.inputs.clone(),
            labels,
            eps: inst.eps,
        };
        let res = verify_uap(&problem, Method::Raven, &RavenConfig::default());
        prop_assert!(res.worst_case_accuracy <= 1.0 + 1e-12);
        prop_assert!(res.worst_case_accuracy >= -1e-12);
        prop_assert!(res.worst_case_hamming >= -1e-9);
    }

    #[test]
    fn all_pairs_at_least_as_tight_as_none(inst in instance()) {
        let labels: Vec<usize> = inst.inputs.iter().map(|x| inst.net.classify(x)).collect();
        let problem = UapProblem {
            plan: inst.net.to_plan(),
            inputs: inst.inputs.clone(),
            labels,
            eps: inst.eps,
        };
        let acc = |pairs| {
            verify_uap(
                &problem,
                Method::Raven,
                &RavenConfig {
                    pairs,
                    spec_milp: false,
                    ..RavenConfig::default()
                },
            )
            .worst_case_accuracy
        };
        prop_assert!(acc(PairStrategy::None) <= acc(PairStrategy::AllPairs) + 1e-7);
    }

    #[test]
    fn certificate_holds_on_sampled_shared_perturbations(inst in instance(), dirs in proptest::collection::vec(proptest::collection::vec(-1.0f64..1.0, 4), 6)) {
        let labels: Vec<usize> = inst.inputs.iter().map(|x| inst.net.classify(x)).collect();
        let problem = UapProblem {
            plan: inst.net.to_plan(),
            inputs: inst.inputs.clone(),
            labels: labels.clone(),
            eps: inst.eps,
        };
        let res = verify_uap(&problem, Method::Raven, &RavenConfig::default());
        // Any concrete shared perturbation yields accuracy ≥ the certified
        // worst case.
        for d in &dirs {
            let correct = inst
                .inputs
                .iter()
                .zip(&labels)
                .filter(|(z, &y)| {
                    let x: Vec<f64> = z
                        .iter()
                        .zip(d)
                        .map(|(&zi, &t)| zi + inst.eps * t)
                        .collect();
                    inst.net.classify(&x) == y
                })
                .count() as f64
                / inst.inputs.len() as f64;
            prop_assert!(
                res.worst_case_accuracy <= correct + 1e-9,
                "certified {} exceeds concrete accuracy {correct}",
                res.worst_case_accuracy
            );
        }
    }
}
