//! Randomized end-to-end tests of the verifier: on randomized networks
//! and batches, the method hierarchy, the certificate/attack sandwich, and
//! the encoder's admission of concrete executions must all hold.
//!
//! Driven by the workspace's deterministic [`Rng`] so the suite builds
//! offline and replays identically on every run. The shrunk LeakyRelu
//! counterexample pinned in `proptest_verifier.proptest-regressions`
//! (case `e7c9d37d…`) is reconstructed verbatim in
//! [`pinned_regression_e7c9d37d_hierarchy_holds`] so it stays covered.

use raven::{verify_uap, Method, PairStrategy, RavenConfig, UapProblem};
use raven_nn::{ActKind, NetworkBuilder};
use raven_tensor::Rng;

const CASES: usize = 24;

#[derive(Debug, Clone)]
struct Instance {
    net: raven_nn::Network,
    inputs: Vec<Vec<f64>>,
    eps: f64,
}

fn act(rng: &mut Rng) -> ActKind {
    ActKind::all()[rng.below(ActKind::all().len())]
}

fn instance(rng: &mut Rng) -> Instance {
    let seed = rng.below(500) as u64;
    let kind = act(rng);
    let hidden = 2 + rng.below(2);
    let eps = rng.in_range(0.005, 0.12);
    let k = 2 + rng.below(2);
    let inputs: Vec<Vec<f64>> = (0..k)
        .map(|_| (0..4).map(|_| rng.in_range(0.2, 0.8)).collect())
        .collect();
    let net = NetworkBuilder::new(4)
        .dense(hidden + 3, seed)
        .activation(kind)
        .dense(hidden + 2, seed + 1)
        .activation(kind)
        .dense(3, seed + 2)
        .build();
    Instance { net, inputs, eps }
}

fn problem_of(inst: &Instance) -> UapProblem {
    let labels: Vec<usize> = inst.inputs.iter().map(|x| inst.net.classify(x)).collect();
    UapProblem {
        plan: inst.net.to_plan(),
        inputs: inst.inputs.clone(),
        labels,
        eps: inst.eps,
    }
}

fn assert_hierarchy(problem: &UapProblem, context: &str) {
    let config = RavenConfig::default();
    let acc = |m| verify_uap(problem, m, &config).worst_case_accuracy;
    let bx = acc(Method::Box);
    let zn = acc(Method::ZonotopeIndividual);
    let dp = acc(Method::DeepPolyIndividual);
    let io = acc(Method::IoLp);
    let rv = acc(Method::Raven);
    assert!(bx <= zn + 1e-7, "{context}: box {bx} > zonotope {zn}");
    assert!(bx <= dp + 1e-7, "{context}: box {bx} > deeppoly {dp}");
    assert!(dp <= io + 1e-7, "{context}: deeppoly {dp} > io-lp {io}");
    assert!(io <= rv + 1e-7, "{context}: io-lp {io} > raven {rv}");
}

#[test]
fn uap_method_hierarchy() {
    let mut rng = Rng::new(0xe2e00);
    for i in 0..CASES {
        let inst = instance(&mut rng);
        assert_hierarchy(&problem_of(&inst), &format!("case {i}"));
    }
}

/// Reconstructs the shrunk counterexample from
/// `proptest_verifier.proptest-regressions` (case `e7c9d37d…`): a 2-input
/// LeakyRelu network at eps ≈ 0.0797 whose hierarchy `io ≤ rv` was violated
/// by the seeded LeakyRelu transformers. Pinned explicitly so the case
/// survives the move off the proptest framework.
#[test]
fn pinned_regression_e7c9d37d_hierarchy_holds() {
    let net = NetworkBuilder::new(4)
        .dense_from(
            &[
                &[
                    -0.5966145345521766,
                    0.06568608557708866,
                    -0.3051183219172173,
                    0.1476534248731404,
                ],
                &[
                    -0.5105371248403475,
                    -1.3949263927279685,
                    -0.11390837812818483,
                    -0.22454650189885156,
                ],
                &[
                    0.15671881954997838,
                    -0.5477636129419441,
                    0.4898941475086561,
                    0.007060899877147004,
                ],
                &[
                    -0.47818075240686403,
                    -0.13922528501440293,
                    -0.35314736685580955,
                    -1.3280997018792877,
                ],
                &[
                    0.7461591491418844,
                    -1.0552812145162598,
                    0.7531028039420735,
                    1.7978359209190808,
                ],
            ],
            &[
                -0.017042206465779895,
                -0.006981766006364354,
                -0.00877218977363078,
                -1.3377504691748567e-5,
                -0.007740351753737853,
            ],
        )
        .activation(ActKind::LeakyRelu)
        .dense_from(
            &[
                &[
                    0.4382057578135393,
                    0.23620720622608898,
                    0.09119084281458316,
                    0.20834756920294917,
                    -0.36955711982645034,
                ],
                &[
                    -0.17477335444260192,
                    -0.6026983610772856,
                    1.3095800624206504,
                    0.8866275487950496,
                    0.17170422703187918,
                ],
                &[
                    -0.06335677052374877,
                    -1.0620600984550426,
                    0.28536000518601784,
                    0.11323211866422651,
                    -1.2645429855239927,
                ],
                &[
                    -0.3437196422178741,
                    -0.7206882778822199,
                    -0.8285981950452905,
                    0.6326015043946146,
                    -0.45829166506469793,
                ],
            ],
            &[
                -0.014067413791182697,
                -0.011578890460506634,
                -0.005780738385043851,
                -0.003553688804774064,
            ],
        )
        .activation(ActKind::LeakyRelu)
        .dense_from(
            &[
                &[
                    0.7246594904425044,
                    0.14700841343598156,
                    0.3599124782315057,
                    1.2672465673177438,
                ],
                &[
                    0.3255866034214232,
                    -0.3276579104742298,
                    0.01467988810061508,
                    -0.4856962862783922,
                ],
                &[
                    1.0846802932118476,
                    -0.31715307314470464,
                    1.2716868756886828,
                    0.5435612689106499,
                ],
            ],
            &[
                0.003974651397190073,
                -0.005707223891474884,
                0.003841100329165978,
            ],
        )
        .build();
    let inst = Instance {
        net,
        inputs: vec![
            vec![
                0.6290242433219236,
                0.4877477358848676,
                0.40799363666128086,
                0.2,
            ],
            vec![0.2, 0.2, 0.2, 0.2],
        ],
        eps: 0.07966235282697806,
    };
    assert_hierarchy(&problem_of(&inst), "pinned regression e7c9d37d");
}

#[test]
fn certificate_never_exceeds_point_evaluation() {
    // The zero perturbation keeps every input at its clean prediction,
    // so the worst case can never beat the clean accuracy (which is 1
    // by construction of the labels).
    let mut rng = Rng::new(0xe2e01);
    for _ in 0..CASES {
        let inst = instance(&mut rng);
        let problem = problem_of(&inst);
        let res = verify_uap(&problem, Method::Raven, &RavenConfig::default());
        assert!(res.worst_case_accuracy <= 1.0 + 1e-12);
        assert!(res.worst_case_accuracy >= -1e-12);
        assert!(res.worst_case_hamming >= -1e-9);
    }
}

#[test]
fn all_pairs_at_least_as_tight_as_none() {
    let mut rng = Rng::new(0xe2e02);
    for _ in 0..CASES {
        let inst = instance(&mut rng);
        let problem = problem_of(&inst);
        let acc = |pairs| {
            verify_uap(
                &problem,
                Method::Raven,
                &RavenConfig {
                    pairs,
                    spec_milp: false,
                    ..RavenConfig::default()
                },
            )
            .worst_case_accuracy
        };
        assert!(acc(PairStrategy::None) <= acc(PairStrategy::AllPairs) + 1e-7);
    }
}

#[test]
fn certificate_holds_on_sampled_shared_perturbations() {
    let mut rng = Rng::new(0xe2e03);
    for _ in 0..CASES {
        let inst = instance(&mut rng);
        let labels: Vec<usize> = inst.inputs.iter().map(|x| inst.net.classify(x)).collect();
        let problem = UapProblem {
            plan: inst.net.to_plan(),
            inputs: inst.inputs.clone(),
            labels: labels.clone(),
            eps: inst.eps,
        };
        let res = verify_uap(&problem, Method::Raven, &RavenConfig::default());
        // Any concrete shared perturbation yields accuracy ≥ the certified
        // worst case.
        for _ in 0..6 {
            let d: Vec<f64> = (0..4).map(|_| rng.in_range(-1.0, 1.0)).collect();
            let correct = inst
                .inputs
                .iter()
                .zip(&labels)
                .filter(|(z, &y)| {
                    let x: Vec<f64> = z
                        .iter()
                        .zip(&d)
                        .map(|(&zi, &t)| zi + inst.eps * t)
                        .collect();
                    inst.net.classify(&x) == y
                })
                .count() as f64
                / inst.inputs.len() as f64;
            assert!(
                res.worst_case_accuracy <= correct + 1e-9,
                "certified {} exceeds concrete accuracy {correct}",
                res.worst_case_accuracy
            );
        }
    }
}
