//! End-to-end certificate tests: verdicts from the verifier replay in the
//! exact checker, tampered certificates are rejected, and random LPs
//! round-trip through emission and replay.

use raven::{
    verify_monotonicity_certified, verify_uap, verify_uap_certified, Method, MonotonicityProblem,
    RavenConfig, RunHooks, UapProblem,
};
use raven_check::{check_certificate, CheckError};
use raven_json::Json;
use raven_lp::{Budget, Direction, LinExpr, LpProblem, Sense, SimplexOptions};
use raven_nn::{ActKind, NetworkBuilder};
use raven_tensor::Rng;

fn uap_problem(eps: f64) -> UapProblem {
    let net = NetworkBuilder::new(4)
        .dense(6, 7)
        .activation(ActKind::Relu)
        .dense(3, 11)
        .build();
    let inputs = vec![
        vec![0.4, 0.5, 0.6, 0.5],
        vec![0.6, 0.4, 0.5, 0.5],
        vec![0.5, 0.6, 0.4, 0.6],
    ];
    let labels = inputs.iter().map(|z| net.classify(z)).collect();
    UapProblem {
        plan: net.to_plan(),
        inputs,
        labels,
        eps,
    }
}

#[test]
fn uap_milp_certificate_replays_and_verdict_is_unchanged() {
    let problem = uap_problem(0.08);
    let config = RavenConfig::default();
    let plain = verify_uap(&problem, Method::Raven, &config);
    let (certified, cert) = verify_uap_certified(&problem, Method::Raven, &config);
    // The certified path must not perturb the verdict.
    assert_eq!(plain.worst_case_accuracy, certified.worst_case_accuracy);
    assert_eq!(plain.tier, certified.tier);
    assert_eq!(plain.exact, certified.exact);
    let cert = cert.expect("raven run must emit a certificate");
    assert_eq!(cert.kind, "uap");
    assert!(cert.analysis.is_some(), "raven retains its relaxations");
    let report = check_certificate(&cert).expect("replay must accept");
    assert!(report.neurons_checked > 0);
    if certified.tier != raven::Tier::Analysis {
        assert!(report.lp_checked, "lp/milp tier must carry lp evidence");
    }
}

#[test]
fn uap_io_lp_certificate_replays() {
    let problem = uap_problem(0.08);
    let config = RavenConfig {
        spec_milp: false,
        ..RavenConfig::default()
    };
    let (res, cert) = verify_uap_certified(&problem, Method::IoLp, &config);
    // The I/O formulation discards its margin-plan analyses, so the
    // certificate is LP-only — present whenever an LP actually solved.
    if res.tier == raven::Tier::Analysis {
        return; // everything individually robust: nothing to certify
    }
    let cert = cert.expect("io-lp run with an LP solve must emit a certificate");
    assert!(cert.analysis.is_none());
    let report = check_certificate(&cert).expect("replay must accept");
    assert!(report.lp_checked);
}

#[test]
fn degraded_analysis_tier_certificate_round_trips() {
    // A deadline that expires immediately forces the solve ladder all the
    // way down to the analysis tier; the certificate then carries only the
    // relaxation records, which still replay.
    let problem = uap_problem(0.3);
    let config = RavenConfig::default();
    let hooks = RunHooks::default().with_deadline_in(std::time::Duration::ZERO);
    let (res, cert) =
        raven::verify_uap_certified_with_hooks(&problem, Method::Raven, &config, &hooks)
            .expect("deadline expiry degrades, it does not cancel");
    assert_eq!(res.tier, raven::Tier::Analysis);
    assert!(res.degraded);
    let cert = cert.expect("analysis-tier raven verdict still certifies its relaxations");
    assert_eq!(cert.tier, "analysis");
    assert!(cert.degraded);
    assert!(cert.lp.is_none());
    let report = check_certificate(&cert).expect("analysis replay must accept");
    assert_eq!(report.tier, "analysis");
    assert!(report.neurons_checked > 0);
    assert!(!report.lp_checked);
}

#[test]
fn monotonicity_certificate_replays() {
    let net = NetworkBuilder::new(3)
        .dense_from(
            &[&[0.8, -0.4, 0.2], &[0.5, 0.3, -0.6], &[0.9, 0.1, 0.4]],
            &[0.1, -0.2, 0.0],
        )
        .activation(ActKind::Sigmoid)
        .dense_from(&[&[0.7, 0.5, 0.6], &[0.0, -0.2, 0.1]], &[0.0, 0.3])
        .build();
    let problem = MonotonicityProblem {
        plan: net.to_plan(),
        center: vec![0.5, 0.5, 0.5],
        eps: 0.1,
        feature: 0,
        tau: 0.2,
        output_weights: vec![1.0, -1.0],
        increasing: true,
    };
    let (res, cert) =
        verify_monotonicity_certified(&problem, Method::Raven, &RavenConfig::default());
    assert!(res.verified);
    let cert = cert.expect("monotonicity raven run must emit a certificate");
    assert_eq!(cert.kind, "monotonicity");
    let report = check_certificate(&cert).expect("replay must accept");
    // Sigmoid relaxations are not replayable in exact arithmetic; the
    // checker must count them as trusted rather than rejecting.
    assert!(report.neurons_trusted > 0);
    assert!(report.lp_checked);
}

#[test]
fn tampered_certificate_json_is_rejected() {
    let problem = uap_problem(0.08);
    let (_, cert) = verify_uap_certified(&problem, Method::Raven, &RavenConfig::default());
    let cert = cert.unwrap();
    // Tamper at the JSON level, the way an untrusted server would.
    let json = cert.to_json().to_string();
    let mut parsed = Json::parse(&json).unwrap();
    tamper_first_slope(&mut parsed);
    let tampered = raven_check::Certificate::from_json(&parsed).expect("still well-formed");
    match check_certificate(&tampered) {
        Err(CheckError::Reject(_)) => {}
        other => panic!("tampered certificate must be rejected, got {other:?}"),
    }
}

/// Pokes the first replayable neuron's upper intercept down, making the
/// upper line dip below the true function.
fn tamper_first_slope(json: &mut Json) {
    let Json::Obj(pairs) = json else {
        panic!("certificate must be an object")
    };
    for (key, value) in pairs.iter_mut() {
        if key == "analysis" {
            let Json::Obj(apairs) = value else { continue };
            for (akey, avalue) in apairs.iter_mut() {
                if akey == "neurons" {
                    let Json::Arr(neurons) = avalue else { continue };
                    let Json::Obj(npairs) = &mut neurons[0] else {
                        continue;
                    };
                    for (nkey, nvalue) in npairs.iter_mut() {
                        if nkey == "ui" {
                            if let Json::Num(v) = nvalue {
                                *v -= 1e-3;
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Proptest-style sweep: random box-constrained LPs are solved certified
/// and every emitted certificate replays exactly; overstating the claimed
/// bound is always caught.
#[test]
fn random_lps_round_trip_through_the_checker() {
    let mut rng = Rng::new(0xCE27_1F1C);
    const CASES: usize = 40;
    let mut certified = 0;
    for case in 0..CASES {
        let mut unif = {
            let mut r = Rng::new(0x9E37 ^ (case as u64).wrapping_mul(0x2545_F491));
            move |lo: f64, hi: f64| lo + (hi - lo) * r.uniform()
        };
        let n = 2 + (rng.next_u64() % 4) as usize;
        let m = 1 + (rng.next_u64() % 4) as usize;
        let mut p = LpProblem::new();
        let vars: Vec<_> = (0..n)
            .map(|_| {
                let lo = unif(-3.0, 0.0);
                let hi = unif(0.0, 3.0);
                p.add_var(lo, hi)
            })
            .collect();
        for _ in 0..m {
            let mut row = LinExpr::new();
            for &v in &vars {
                let c = unif(-2.0, 2.0);
                if c.abs() > 0.2 {
                    row.push(c, v);
                }
            }
            let sense = match rng.next_u64() % 3 {
                0 => Sense::Le,
                1 => Sense::Ge,
                _ => Sense::Eq,
            };
            p.add_constraint(row, sense, unif(-2.0, 2.0));
        }
        let mut obj = LinExpr::new();
        for &v in &vars {
            obj.push(unif(-1.0, 1.0), v);
        }
        let dir = if rng.next_u64().is_multiple_of(2) {
            Direction::Maximize
        } else {
            Direction::Minimize
        };
        p.set_objective(dir, obj);
        let Ok((sol, cert)) = p.solve_certified(&SimplexOptions::default(), &Budget::unlimited())
        else {
            continue; // numerical failure: no certificate claimed, fine
        };
        let Some(lp_cert) = cert else { continue };
        certified += 1;
        let wrapped = raven_check::Certificate {
            kind: "lp-sweep".to_string(),
            tier: "lp".to_string(),
            degraded: false,
            lp: Some(lp_cert.clone()),
            analysis: None,
        };
        check_certificate(&wrapped)
            .unwrap_or_else(|e| panic!("case {case}: honest certificate rejected: {e}"));
        // A strictly stronger claimed bound than the solver proved must
        // fail: smaller for a maximization bound, larger for minimization.
        if sol.is_optimal() {
            let mut evil = lp_cert;
            evil.claimed_bound += match evil.problem.direction {
                raven_check::CertDirection::Maximize => -0.5,
                raven_check::CertDirection::Minimize => 0.5,
            };
            let wrapped = raven_check::Certificate {
                kind: "lp-sweep".to_string(),
                tier: "lp".to_string(),
                degraded: false,
                lp: Some(evil),
                analysis: None,
            };
            assert!(
                check_certificate(&wrapped).is_err(),
                "case {case}: inflated bound accepted"
            );
        }
    }
    assert!(
        certified >= CASES / 2,
        "too few cases certified: {certified}"
    );
}
