//! Randomized soundness stress tests: for many random networks, input
//! regions and shared perturbations, every abstract result must contain the
//! corresponding concrete execution. These are the repository's strongest
//! end-to-end guards against transformer bugs.

use raven_deeppoly::DeepPolyAnalysis;
use raven_diffpoly::DiffPolyAnalysis;
use raven_interval::{linf_ball, Interval, IntervalAnalysis};
use raven_nn::{ActKind, Network, NetworkBuilder};
use raven_tensor::Rng;

fn random_net(seed: u64, kind: ActKind) -> Network {
    let depth = 2 + (seed % 2) as usize;
    let mut b = NetworkBuilder::new(4);
    for layer in 0..depth {
        b = b
            .dense(4 + (seed as usize + layer) % 4, seed * 31 + layer as u64)
            .activation(kind);
    }
    b.dense(3, seed * 97 + 7).build()
}

#[test]
fn interval_and_deeppoly_contain_concrete_runs() {
    for seed in 0..12u64 {
        for kind in ActKind::all() {
            let net = random_net(seed, kind);
            let plan = net.to_plan();
            let mut s = Rng::new(seed * 13 + 5);
            let center: Vec<f64> = (0..4).map(|_| s.in_range(0.2, 0.8)).collect();
            let eps = s.in_range(0.01, 0.15);
            let ball = linf_ball(&center, eps, f64::NEG_INFINITY, f64::INFINITY);
            let iv = IntervalAnalysis::run(&plan, &ball);
            let dp = DeepPolyAnalysis::run(&plan, &ball);
            for trial in 0..20 {
                let mut t = Rng::new(seed * 101 + trial);
                let x: Vec<f64> = center
                    .iter()
                    .map(|&c| c + eps * t.in_range(-1.0, 1.0))
                    .collect();
                let y = net.forward(&x);
                for ((bi, di), &v) in iv.output().iter().zip(dp.output()).zip(&y) {
                    assert!(
                        bi.lo() - 1e-7 <= v && v <= bi.hi() + 1e-7,
                        "interval unsound (seed {seed}, {kind}): {v} not in {bi}"
                    );
                    assert!(
                        di.lo() - 1e-7 <= v && v <= di.hi() + 1e-7,
                        "deeppoly unsound (seed {seed}, {kind}): {v} not in {di}"
                    );
                    assert!(
                        di.lo() >= bi.lo() - 1e-7 && di.hi() <= bi.hi() + 1e-7,
                        "deeppoly looser than interval (seed {seed}, {kind})"
                    );
                }
            }
        }
    }
}

#[test]
fn diffpoly_contains_concrete_shared_perturbation_pairs() {
    for seed in 0..10u64 {
        for kind in [
            ActKind::Relu,
            ActKind::Tanh,
            ActKind::LeakyRelu,
            ActKind::HardTanh,
        ] {
            let net = random_net(seed, kind);
            let plan = net.to_plan();
            let mut s = Rng::new(seed * 7 + 3);
            let za: Vec<f64> = (0..4).map(|_| s.in_range(0.2, 0.8)).collect();
            let zb: Vec<f64> = (0..4).map(|_| s.in_range(0.2, 0.8)).collect();
            let eps = s.in_range(0.02, 0.1);
            let ball_a = linf_ball(&za, eps, f64::NEG_INFINITY, f64::INFINITY);
            let ball_b = linf_ball(&zb, eps, f64::NEG_INFINITY, f64::INFINITY);
            let dp_a = DeepPolyAnalysis::run(&plan, &ball_a);
            let dp_b = DeepPolyAnalysis::run(&plan, &ball_b);
            let delta: Vec<Interval> = za
                .iter()
                .zip(&zb)
                .map(|(&a, &b)| Interval::point(a - b))
                .collect();
            let diff = DiffPolyAnalysis::run(&plan, &dp_a, &dp_b, &delta);
            for trial in 0..20 {
                let mut t = Rng::new(seed * 211 + trial * 17 + 1);
                let shift: Vec<f64> = (0..4).map(|_| eps * t.in_range(-1.0, 1.0)).collect();
                let xa: Vec<f64> = za.iter().zip(&shift).map(|(&z, &d)| z + d).collect();
                let xb: Vec<f64> = zb.iter().zip(&shift).map(|(&z, &d)| z + d).collect();
                let ya = net.forward(&xa);
                let yb = net.forward(&xb);
                for (iv, (&a, &b)) in diff.output().iter().zip(ya.iter().zip(&yb)) {
                    let d = a - b;
                    assert!(
                        iv.lo() - 1e-7 <= d && d <= iv.hi() + 1e-7,
                        "diffpoly unsound (seed {seed}, {kind}): {d} not in {iv}"
                    );
                }
            }
            // Difference tracking must never be looser than subtracting the
            // per-execution bounds.
            for (iv, (da, db)) in diff
                .output()
                .iter()
                .zip(dp_a.output().iter().zip(dp_b.output()))
            {
                let naive = *da - *db;
                assert!(
                    iv.lo() >= naive.lo() - 1e-7 && iv.hi() <= naive.hi() + 1e-7,
                    "diffpoly looser than subtraction (seed {seed}, {kind})"
                );
            }
        }
    }
}

#[test]
fn deeppoly_monotone_in_radius() {
    // Growing the input region must never shrink the output bounds.
    for seed in 0..6u64 {
        let net = random_net(seed, ActKind::Relu);
        let plan = net.to_plan();
        let center = vec![0.5; 4];
        let mut prev: Option<Vec<Interval>> = None;
        for step in 1..6 {
            let eps = 0.02 * step as f64;
            let dp = DeepPolyAnalysis::run(
                &plan,
                &linf_ball(&center, eps, f64::NEG_INFINITY, f64::INFINITY),
            );
            if let Some(prev) = &prev {
                for (small, big) in prev.iter().zip(dp.output()) {
                    assert!(
                        big.lo() <= small.lo() + 1e-9 && big.hi() >= small.hi() - 1e-9,
                        "bounds not monotone in radius (seed {seed})"
                    );
                }
            }
            prev = Some(dp.output().to_vec());
        }
    }
}
