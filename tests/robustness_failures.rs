//! Failure-injection and resource-limit tests: the verifier must degrade
//! *soundly* (conservative answers), never panic or over-claim, when its
//! solver is starved or its inputs are hostile.

use raven::{verify_uap, Method, RavenConfig, UapProblem};
use raven_lp::{MilpOptions, SimplexOptions};
use raven_nn::{ActKind, NetworkBuilder};
use std::path::Path;

fn tiny_problem(eps: f64) -> UapProblem {
    let net = NetworkBuilder::new(3)
        .dense(6, 41)
        .activation(ActKind::Relu)
        .dense(2, 42)
        .build();
    let inputs = vec![vec![0.4, 0.5, 0.6], vec![0.6, 0.5, 0.4]];
    let labels: Vec<usize> = inputs.iter().map(|x| net.classify(x)).collect();
    UapProblem {
        plan: net.to_plan(),
        inputs,
        labels,
        eps,
    }
}

#[test]
fn starved_simplex_degrades_conservatively() {
    // An absurdly small iteration limit must not panic and must not
    // over-claim: the result stays a valid probability, and it can only be
    // more conservative (lower) than the unconstrained answer.
    let problem = tiny_problem(0.15);
    let full = verify_uap(&problem, Method::Raven, &RavenConfig::default());
    let starved_cfg = RavenConfig {
        simplex: SimplexOptions {
            max_iters: 2,
            ..SimplexOptions::default()
        },
        milp: MilpOptions {
            simplex: SimplexOptions {
                max_iters: 2,
                ..SimplexOptions::default()
            },
            ..MilpOptions::default()
        },
        ..RavenConfig::default()
    };
    let starved = verify_uap(&problem, Method::Raven, &starved_cfg);
    assert!((0.0..=1.0).contains(&starved.worst_case_accuracy));
    assert!(
        starved.worst_case_accuracy <= full.worst_case_accuracy + 1e-9,
        "starved solver over-claimed: {} vs {}",
        starved.worst_case_accuracy,
        full.worst_case_accuracy
    );
}

#[test]
fn zero_node_budget_milp_falls_back_to_lp() {
    let problem = tiny_problem(0.15);
    let cfg = RavenConfig {
        milp: MilpOptions {
            max_nodes: 0,
            ..MilpOptions::default()
        },
        ..RavenConfig::default()
    };
    let res = verify_uap(&problem, Method::Raven, &cfg);
    assert!((0.0..=1.0).contains(&res.worst_case_accuracy));
    // LP fallback (or trivially-robust shortcut); must still be sound vs a
    // permissive run.
    let full = verify_uap(&problem, Method::Raven, &RavenConfig::default());
    assert!(res.worst_case_accuracy <= full.worst_case_accuracy + 1e-9);
}

#[test]
fn hostile_model_files_error_instead_of_panicking() {
    let cases = [
        "",
        "garbage",
        "raven-net v1",
        "raven-net v1\ninput 2\ndense 9999999 2\nend\n",
        "raven-net v1\ninput 2\ndense 1 2\n1.0 nan\n0.0\nend\n",
        "raven-net v1\ninput 2\nact quantum\nend\n",
        "raven-net v1\ninput 2\nbatchnorm 2 not_a_float\nend\n",
        "raven-net v1\ninput 18446744073709551616\nend\n",
    ];
    for text in cases {
        // Must return Err (or Ok for syntactically valid inputs), never
        // panic. `nan` parses as a float in Rust, so case 5 may be Ok.
        let _ = raven_nn::parse_network(text);
    }
}

#[test]
fn committed_golden_model_loads_and_verifies() {
    // Guards the on-disk format against accidental breakage: the repository
    // ships a trained model + batch produced by `raven_cli train-demo`.
    let net = raven_nn::load_network(Path::new("models/demo.net")).expect("golden model loads");
    assert_eq!(net.input_dim(), 36);
    assert_eq!(net.output_dim(), 4);
    let text = std::fs::read_to_string("models/demo_batch.txt").expect("golden batch loads");
    let mut inputs = Vec::new();
    let mut labels = Vec::new();
    for line in text.lines() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        labels.push(parts.next().unwrap().parse::<usize>().unwrap());
        inputs.push(
            parts
                .map(|v| v.parse::<f64>().unwrap())
                .collect::<Vec<f64>>(),
        );
    }
    assert!(!inputs.is_empty());
    // The committed batch is correctly classified by the committed model.
    for (x, &y) in inputs.iter().zip(&labels) {
        assert_eq!(net.classify(x), y, "golden batch misclassified");
    }
    let problem = UapProblem {
        plan: net.to_plan(),
        inputs,
        labels,
        eps: 0.02,
    };
    let res = verify_uap(&problem, Method::Raven, &RavenConfig::default());
    assert!((0.0..=1.0).contains(&res.worst_case_accuracy));
}

#[test]
fn batchnorm_networks_flow_through_all_methods() {
    let samples: Vec<Vec<f64>> = (0..30)
        .map(|i| (0..3).map(|j| 0.3 + 0.02 * ((i + j) % 7) as f64).collect())
        .collect();
    let net = NetworkBuilder::new(3)
        .batch_norm_from(&samples)
        .dense(6, 71)
        .activation(ActKind::Relu)
        .dense(2, 72)
        .build();
    let inputs = vec![vec![0.35, 0.4, 0.38], vec![0.4, 0.36, 0.42]];
    let labels: Vec<usize> = inputs.iter().map(|x| net.classify(x)).collect();
    let problem = UapProblem {
        plan: net.to_plan(),
        inputs,
        labels,
        eps: 0.01,
    };
    for method in Method::all() {
        let res = verify_uap(&problem, method, &RavenConfig::default());
        assert!(
            (0.0..=1.0).contains(&res.worst_case_accuracy),
            "{method} produced out-of-range accuracy"
        );
    }
}
