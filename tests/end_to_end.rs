//! Cross-crate integration tests: train → analyze → encode → solve →
//! certify, exercising the full public API the way a downstream user would.

use raven::{
    verify_monotonicity, verify_uap, Method, MonotonicityProblem, PairStrategy, RavenConfig,
    UapProblem,
};
use raven_nn::data::{synth_credit, synth_digits};
use raven_nn::train::{train_classifier, TrainConfig};
use raven_nn::{attack, ActKind, NetworkBuilder};

fn trained_digit_net() -> (raven_nn::Network, raven_nn::data::Dataset) {
    let ds = synth_digits(5, 3, 150, 0.1, 99);
    let (train, test) = ds.split(0.2);
    let mut net = NetworkBuilder::new(train.input_dim)
        .dense(16, 11)
        .activation(ActKind::Relu)
        .dense(12, 12)
        .activation(ActKind::Relu)
        .dense(train.num_classes, 13)
        .build();
    let report = train_classifier(
        &mut net,
        &train,
        &TrainConfig {
            epochs: 40,
            lr: 0.4,
            momentum: 0.0,
            batch_size: 8,
            seed: 3,
            adversarial: None,
        },
    );
    assert!(report.final_accuracy > 0.9, "training failed: {report:?}");
    (net, test)
}

fn batch(
    net: &raven_nn::Network,
    test: &raven_nn::data::Dataset,
    k: usize,
) -> (Vec<Vec<f64>>, Vec<usize>) {
    let mut inputs = Vec::new();
    let mut labels = Vec::new();
    for (x, &y) in test.inputs.iter().zip(&test.labels) {
        if net.classify(x) == y {
            inputs.push(x.clone());
            labels.push(y);
            if inputs.len() == k {
                break;
            }
        }
    }
    assert_eq!(inputs.len(), k);
    (inputs, labels)
}

#[test]
fn uap_method_hierarchy_holds_across_epsilons() {
    let (net, test) = trained_digit_net();
    let (inputs, labels) = batch(&net, &test, 3);
    let plan = net.to_plan();
    for eps in [0.02, 0.05, 0.09] {
        let problem = UapProblem {
            plan: plan.clone(),
            inputs: inputs.clone(),
            labels: labels.clone(),
            eps,
        };
        let acc = |m| verify_uap(&problem, m, &RavenConfig::default()).worst_case_accuracy;
        let bx = acc(Method::Box);
        let zn = acc(Method::ZonotopeIndividual);
        let dp = acc(Method::DeepPolyIndividual);
        let io = acc(Method::IoLp);
        let rv = acc(Method::Raven);
        assert!(bx <= zn + 1e-9, "eps {eps}: box {bx} > zonotope {zn}");
        assert!(bx <= dp + 1e-9, "eps {eps}: box {bx} > deeppoly {dp}");
        assert!(dp <= io + 1e-9, "eps {eps}: deeppoly {dp} > io-lp {io}");
        assert!(io <= rv + 1e-9, "eps {eps}: io-lp {io} > raven {rv}");
    }
}

#[test]
fn certificates_lower_bound_attacks_everywhere() {
    let (net, test) = trained_digit_net();
    let (inputs, labels) = batch(&net, &test, 3);
    let plan = net.to_plan();
    for eps in [0.03, 0.08, 0.15] {
        let problem = UapProblem {
            plan: plan.clone(),
            inputs: inputs.clone(),
            labels: labels.clone(),
            eps,
        };
        let cert = verify_uap(&problem, Method::Raven, &RavenConfig::default());
        let atk = attack::uap(&net, &inputs, &labels, eps, 20, eps / 4.0);
        assert!(
            cert.worst_case_accuracy <= atk.accuracy + 1e-9,
            "eps {eps}: certified {} > attacked {}",
            cert.worst_case_accuracy,
            atk.accuracy
        );
    }
}

#[test]
fn pair_strategies_never_lose_precision() {
    let (net, test) = trained_digit_net();
    let (inputs, labels) = batch(&net, &test, 3);
    let problem = UapProblem {
        plan: net.to_plan(),
        inputs,
        labels,
        eps: 0.08,
    };
    let acc = |pairs| {
        verify_uap(
            &problem,
            Method::Raven,
            &RavenConfig {
                pairs,
                spec_milp: false,
                ..RavenConfig::default()
            },
        )
        .worst_case_accuracy
    };
    let none = acc(PairStrategy::None);
    let consecutive = acc(PairStrategy::Consecutive);
    let all = acc(PairStrategy::AllPairs);
    assert!(none <= consecutive + 1e-7, "{none} vs {consecutive}");
    assert!(consecutive <= all + 1e-7, "{consecutive} vs {all}");
}

#[test]
fn monotonicity_pipeline_on_trained_credit_model() {
    let (ds, spec) = synth_credit(200, 0.05, 31);
    let (train, test) = ds.split(0.2);
    let mut net = NetworkBuilder::new(ds.input_dim)
        .dense(10, 21)
        .activation(ActKind::Sigmoid)
        .dense(2, 22)
        .build();
    train_classifier(
        &mut net,
        &train,
        &TrainConfig {
            epochs: 50,
            lr: 0.4,
            momentum: 0.0,
            batch_size: 8,
            seed: 4,
            adversarial: None,
        },
    );
    let plan = net.to_plan();
    // RaVeN certifies at least as many points as the baselines for every
    // monotone feature.
    for &feature in spec.increasing.iter().take(2) {
        let mut counts = [0usize; 5];
        for x in test.inputs.iter().take(5) {
            let problem = MonotonicityProblem {
                plan: plan.clone(),
                center: x.clone(),
                eps: 0.01,
                feature,
                tau: 0.05,
                output_weights: vec![-1.0, 1.0],
                increasing: true,
            };
            for (slot, method) in Method::all().into_iter().enumerate() {
                if verify_monotonicity(&problem, method, &RavenConfig::default()).verified {
                    counts[slot] += 1;
                }
            }
        }
        assert!(counts[4] >= counts[3], "raven < io-lp: {counts:?}");
        assert!(counts[3] >= counts[2], "io-lp < deeppoly: {counts:?}");
        assert!(counts[2] >= counts[0], "deeppoly < box: {counts:?}");
        assert!(counts[1] >= counts[0], "zonotope < box: {counts:?}");
    }
}

#[test]
fn serialization_roundtrips_through_verification() {
    // A model saved and reloaded must verify identically.
    let (net, test) = trained_digit_net();
    let (inputs, labels) = batch(&net, &test, 2);
    let text = raven_nn::network_to_string(&net);
    let reloaded = raven_nn::parse_network(&text).expect("roundtrip parses");
    assert_eq!(net, reloaded);
    let mk = |n: &raven_nn::Network| UapProblem {
        plan: n.to_plan(),
        inputs: inputs.clone(),
        labels: labels.clone(),
        eps: 0.05,
    };
    let a = verify_uap(&mk(&net), Method::Raven, &RavenConfig::default());
    let b = verify_uap(&mk(&reloaded), Method::Raven, &RavenConfig::default());
    assert_eq!(a.worst_case_accuracy, b.worst_case_accuracy);
}

#[test]
fn conv_networks_verify_through_affine_lowering() {
    // A conv net flows through the same pipeline via its affine lowering.
    let net = NetworkBuilder::new(2 * 4 * 4)
        .conv(2, 4, 4, 3, 3, 3, 1, 1, 61)
        .activation(ActKind::Relu)
        .dense(3, 62)
        .build();
    let inputs = vec![vec![0.5; 32], vec![0.3; 32]];
    let labels: Vec<usize> = inputs.iter().map(|x| net.classify(x)).collect();
    let problem = UapProblem {
        plan: net.to_plan(),
        inputs,
        labels,
        eps: 0.01,
    };
    let res = verify_uap(&problem, Method::Raven, &RavenConfig::default());
    assert!(res.worst_case_accuracy >= 0.0 && res.worst_case_accuracy <= 1.0);
}
