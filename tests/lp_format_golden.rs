//! Golden-file coverage for `raven_lp::to_lp_format`.
//!
//! The LP writer is the interop surface for cross-checking the in-repo
//! simplex against external solvers, so its exact output matters: a silent
//! formatting change would invalidate saved problem files and external
//! tooling. The golden file pins the full serialization of a small UAP
//! relational encoding; a structural parse-back check then validates the
//! writer's internal consistency (every variable referenced anywhere is
//! declared in `Bounds`).
//!
//! Regenerate after an *intentional* format change with:
//! `RAVEN_REGEN_GOLDEN=1 cargo test --test lp_format_golden`

use raven::relational::{export_lp, RelationalProblem};
use raven::RavenConfig;
use raven_interval::Interval;
use raven_nn::{ActKind, NetworkBuilder};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

fn golden_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/uap_small.lp")
}

/// A tiny fixed-weight network and a 2-execution UAP encoding — small
/// enough that the golden file stays reviewable, large enough to exercise
/// every section the writer emits (objective, constraints, two-sided
/// bounds, free variables).
fn small_uap_lp() -> String {
    let net = NetworkBuilder::new(2)
        .dense_from(&[&[1.0, -0.5], &[0.25, 0.75]], &[0.1, -0.2])
        .activation(ActKind::Relu)
        .dense_from(&[&[0.5, -1.0], &[1.0, 0.5]], &[0.0, 0.05])
        .build();
    let mut problem = RelationalProblem::new(net.to_plan(), vec![Interval::symmetric(0.1); 2]);
    problem.add_perturbed_execution(&[0.2, 0.7]);
    problem.add_perturbed_execution(&[0.6, 0.3]);
    export_lp(&problem, &RavenConfig::default())
}

#[test]
fn uap_encoding_matches_golden_file() {
    let text = small_uap_lp();
    let path = golden_path();
    if std::env::var("RAVEN_REGEN_GOLDEN").is_ok() {
        std::fs::write(&path, &text).expect("write golden file");
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); regenerate with RAVEN_REGEN_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        text,
        golden,
        "LP serialization drifted from {}; if intentional, regenerate with RAVEN_REGEN_GOLDEN=1",
        path.display()
    );
}

/// Extracts every `x<digits>` variable token from a line.
fn vars_in(line: &str) -> Vec<String> {
    line.split_whitespace()
        .filter(|tok| {
            tok.len() > 1 && tok.starts_with('x') && tok[1..].bytes().all(|b| b.is_ascii_digit())
        })
        .map(|tok| tok.to_string())
        .collect()
}

#[test]
fn every_referenced_variable_is_declared_in_bounds() {
    let text = small_uap_lp();
    // Split the serialization into its sections.
    let (head, bounds_and_tail) = text
        .split_once("Bounds\n")
        .expect("writer emits a Bounds section");
    let bounds = bounds_and_tail
        .split("Binary\n")
        .next()
        .unwrap()
        .split("End\n")
        .next()
        .unwrap();

    let referenced: BTreeSet<String> = head.lines().flat_map(vars_in).collect();
    let declared: BTreeSet<String> = bounds.lines().flat_map(vars_in).collect();
    assert!(
        !referenced.is_empty() && !declared.is_empty(),
        "parse-back found no variables — token scanner broken?"
    );
    let undeclared: Vec<_> = referenced.difference(&declared).collect();
    assert!(
        undeclared.is_empty(),
        "constraints/objective reference variables with no Bounds entry: {undeclared:?}"
    );

    // The encoding is relational: with two executions over a 2-input net
    // there are shared-perturbation variables plus per-execution layer
    // variables, so the declaration count must exceed the inputs alone.
    assert!(
        declared.len() > 4,
        "suspiciously few variables: {declared:?}"
    );
}
