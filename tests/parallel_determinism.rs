//! The parallel execution layer's contract: for every method and every
//! fan-out point, `threads: N` must be *bit-identical* to `threads: 1`.
//! Work items are pure and results are collected in input order, so the
//! schedule cannot influence any certified number — these tests pin that
//! down on the committed golden model.

use raven::{
    relational::{solve, OutputQuery, RelationalProblem},
    sweep::uap_sweep,
    verify_targeted_uap, verify_uap, Method, RavenConfig, TargetedUapProblem, UapProblem,
    UapResult,
};
use raven_interval::Interval;
use std::path::Path;

fn golden_problem(eps: f64) -> UapProblem {
    let net = raven_nn::load_network(Path::new("models/demo.net")).expect("golden model loads");
    let text = std::fs::read_to_string("models/demo_batch.txt").expect("golden batch loads");
    let mut inputs = Vec::new();
    let mut labels = Vec::new();
    for line in text.lines() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        labels.push(parts.next().unwrap().parse::<usize>().unwrap());
        inputs.push(
            parts
                .map(|v| v.parse::<f64>().unwrap())
                .collect::<Vec<f64>>(),
        );
    }
    assert!(inputs.len() >= 3, "golden batch too small");
    UapProblem {
        plan: net.to_plan(),
        inputs,
        labels,
        eps,
    }
}

fn config(threads: usize) -> RavenConfig {
    RavenConfig {
        threads,
        ..RavenConfig::default()
    }
}

/// Bitwise equality on everything except the wall-clock field.
fn assert_bit_identical(seq: &UapResult, par: &UapResult, context: &str) {
    assert_eq!(seq.method, par.method, "{context}: method");
    assert_eq!(
        seq.worst_case_accuracy.to_bits(),
        par.worst_case_accuracy.to_bits(),
        "{context}: accuracy {} vs {}",
        seq.worst_case_accuracy,
        par.worst_case_accuracy
    );
    assert_eq!(
        seq.worst_case_hamming.to_bits(),
        par.worst_case_hamming.to_bits(),
        "{context}: hamming"
    );
    assert_eq!(
        seq.individually_verified, par.individually_verified,
        "{context}: individually verified"
    );
    assert_eq!(seq.lp_rows, par.lp_rows, "{context}: lp rows");
    assert_eq!(seq.lp_vars, par.lp_vars, "{context}: lp vars");
    assert_eq!(seq.exact, par.exact, "{context}: exact flag");
    match (&seq.counterexample_delta, &par.counterexample_delta) {
        (None, None) => {}
        (Some(a), Some(b)) => {
            assert_eq!(a.len(), b.len(), "{context}: witness length");
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.to_bits(), y.to_bits(), "{context}: witness coordinate");
            }
        }
        _ => panic!("{context}: witness presence differs"),
    }
}

#[test]
fn all_methods_bit_identical_across_thread_counts_on_golden_model() {
    // eps is kept small so the Raven MILP cells stay cheap in debug builds;
    // the schedule-independence being tested does not depend on the radius.
    for eps in [0.01, 0.02] {
        let problem = golden_problem(eps);
        for method in Method::all() {
            let seq = verify_uap(&problem, method, &config(1));
            let par = verify_uap(&problem, method, &config(4));
            assert_bit_identical(&seq, &par, &format!("uap {method} eps {eps}"));
        }
    }
}

#[test]
fn targeted_uap_bit_identical_across_thread_counts() {
    let base = golden_problem(0.02);
    for target in 0..2 {
        let tp = TargetedUapProblem {
            base: base.clone(),
            target,
        };
        for method in [Method::DeepPolyIndividual, Method::Raven] {
            let seq = verify_targeted_uap(&tp, method, &config(1));
            let par = verify_targeted_uap(&tp, method, &config(4));
            assert_eq!(
                seq.max_forced.to_bits(),
                par.max_forced.to_bits(),
                "targeted {method} target {target}: {} vs {}",
                seq.max_forced,
                par.max_forced
            );
            assert_eq!(
                seq.exact, par.exact,
                "targeted {method} target {target}: exact"
            );
        }
    }
}

#[test]
fn sweep_bit_identical_across_thread_counts_including_dead_skip() {
    // The grid reaches eps values large enough to kill the weak methods, so
    // the dead-method fast path is exercised on both sides. Raven is left
    // out: its sweep cells go through the same verify_uap covered above,
    // and its MILP at the big radius is too slow for a debug-build test.
    let eps_values = [0.01, 0.05, 0.3];
    let methods = [
        Method::Box,
        Method::ZonotopeIndividual,
        Method::DeepPolyIndividual,
        Method::IoLp,
    ];
    let run = |threads: usize| uap_sweep(golden_problem, &eps_values, &methods, &config(threads));
    let seq = run(1);
    let par = run(4);
    assert_eq!(seq.methods, par.methods);
    assert_eq!(seq.points.len(), par.points.len());
    for (ps, pp) in seq.points.iter().zip(&par.points) {
        assert_eq!(ps.eps.to_bits(), pp.eps.to_bits());
        for (rs, rp) in ps.results.iter().zip(&pp.results) {
            assert_bit_identical(rs, rp, &format!("sweep eps {} {}", ps.eps, rs.method));
        }
    }
    // Sanity: the big radius actually killed at least one method, so the
    // dead-skip path ran rather than being vacuously equal.
    assert!(seq
        .points
        .last()
        .unwrap()
        .results
        .iter()
        .any(|r| r.worst_case_accuracy == 0.0));
}

#[test]
fn metrics_never_change_verdict_bytes() {
    // Telemetry is observe-only: flipping the process-wide metrics switch
    // must not change a single byte of the canonical verdict JSON, at any
    // thread count. (The other tests in this file run with whatever state
    // the switch is in — also fine, for the same reason.)
    let problem = golden_problem(0.02);
    let verdict = |threads: usize| {
        let res = verify_uap(&problem, Method::Raven, &config(threads));
        raven::report::uap_verdict_json(problem.k(), problem.eps, &res).to_string()
    };
    raven_obs::set_enabled(false);
    let off_seq = verdict(1);
    let off_par = verdict(4);
    raven_obs::set_enabled(true);
    let on_seq = verdict(1);
    let on_par = verdict(4);
    raven_obs::set_enabled(false);
    assert_eq!(off_seq, on_seq, "enabling metrics changed verdict bytes");
    assert_eq!(off_seq, off_par, "metrics off: thread count changed bytes");
    assert_eq!(on_seq, on_par, "metrics on: thread count changed bytes");
}

#[test]
fn relational_solve_bit_identical_across_thread_counts() {
    let problem = golden_problem(0.02);
    let mut rel = RelationalProblem::new(
        problem.plan.clone(),
        vec![Interval::symmetric(problem.eps); problem.plan.input_dim()],
    );
    let a = rel.add_perturbed_execution(&problem.inputs[0]);
    let b = rel.add_perturbed_execution(&problem.inputs[1]);
    let query = OutputQuery::output_difference(a, b, 0);
    for direction in [raven_lp::Direction::Minimize, raven_lp::Direction::Maximize] {
        let seq = solve(&rel, &query, direction, &config(1)).expect("solves sequentially");
        let par = solve(&rel, &query, direction, &config(4)).expect("solves in parallel");
        assert_eq!(
            seq.value.to_bits(),
            par.value.to_bits(),
            "relational {direction:?}: {} vs {}",
            seq.value,
            par.value
        );
        assert_eq!(seq.lp_rows, par.lp_rows);
        assert_eq!(seq.lp_vars, par.lp_vars);
    }
}
