//! Umbrella crate for the RaVeN reproduction workspace.
//!
//! Re-exports the public API of every member crate so examples and
//! integration tests can use a single import root.

pub use raven;
pub use raven_deeppoly as deeppoly;
pub use raven_diffpoly as diffpoly;
pub use raven_interval as interval;
pub use raven_lp as lp;
pub use raven_nn as nn;
pub use raven_tensor as tensor;
pub use raven_zonotope as zonotope;
